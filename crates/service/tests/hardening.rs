//! Hostile-traffic hardening tests: every attack in the malicious-client
//! repertoire — oversized topologies, billion-qubit registers, deeply
//! nested JSON, quota exhaustion, queue flooding, idle connections —
//! must yield a structured error line (or, for idling, a labeled
//! disconnect), never a panic, an allocation blow-up, or a starved
//! neighbour.

use qompress::{Compiler, Strategy};
use qompress_service::{
    loopback, serve_duplex, serve_duplex_with_limits, ServiceClient, ServiceError, ServiceEvent,
    ServiceLimits,
};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

type LoopClient =
    ServiceClient<BufReader<qompress_service::LoopbackReader>, qompress_service::LoopbackWriter>;

/// Spawns a loopback server with explicit limits; returns the connected
/// client and the server thread handle.
fn connect_with_limits(
    session: Arc<Compiler>,
    limits: ServiceLimits,
) -> (LoopClient, std::thread::JoinHandle<std::io::Result<()>>) {
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || {
        serve_duplex_with_limits(session, server_reader, server_writer, limits)
    });
    let (reader, writer) = client_end.split();
    (ServiceClient::new(BufReader::new(reader), writer), server)
}

fn connect(session: Arc<Compiler>) -> (LoopClient, std::thread::JoinHandle<std::io::Result<()>>) {
    connect_with_limits(session, ServiceLimits::default())
}

const SMALL_QASM: &str = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";

#[test]
fn oversized_topology_specs_are_rejected_structurally() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (mut client, server) = connect(Arc::clone(&session));

    // The classic DoS line: a topology spec naming a hundred-million-node
    // device. Rejected by the size clamp before any constructor runs.
    for spec in ["line:100000000", "grid:4097", "ring:999999999", "ring:2"] {
        let err = client
            .submit("attack", Strategy::Eqm, spec, SMALL_QASM)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Remote(_)), "{spec}: {err}");
    }

    // The connection survives and still compiles real work.
    let id = client
        .submit("legit", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap();
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == id
    ));
    let stats = client.stats().unwrap();
    assert_eq!(stats.service.submitted, 1, "rejected submits never enqueue");

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn billion_qubit_qreg_is_rejected_before_allocation() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (mut client, server) = connect(Arc::clone(&session));

    // If this allocated per-qubit state the test would OOM, not fail.
    let bomb = "OPENQASM 2.0;\nqreg q[1000000000];\nh q[0];\n";
    let err = client
        .submit("bomb", Strategy::Eqm, "grid:3", bomb)
        .unwrap_err();
    let ServiceError::Remote(message) = &err else {
        panic!("expected a structured rejection, got {err}");
    };
    assert!(message.contains("limit of 256 qubits"), "{message}");

    // Summed registers cross the wire cap too.
    let split = "OPENQASM 2.0;\nqreg a[200];\nqreg b[200];\nh a[0];\n";
    let err = client
        .submit("split", Strategy::Eqm, "grid:3", split)
        .unwrap_err();
    assert!(matches!(err, ServiceError::Remote(_)), "{err}");

    let id = client
        .submit("legit", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap();
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == id
    ));
    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn deeply_nested_json_survives_the_live_wire() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || serve_duplex(session, server_reader, server_writer));
    let (reader, mut writer) = client_end.split();
    let mut lines = BufReader::new(reader).lines();

    // A megabyte of `[`: with naive recursion this overflows the reader
    // thread's stack and kills the connection; the depth bound answers an
    // error line instead.
    let mut bomb = "[".repeat(1 << 20);
    bomb.push('\n');
    writer.write_all(bomb.as_bytes()).unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("nesting"), "{reply}");

    // Same for an object chain, wrapped as a plausible request.
    let mut object_bomb = String::from("{\"op\":");
    for _ in 0..1000 {
        object_bomb.push_str("{\"x\":");
    }
    object_bomb.push('\n');
    writer.write_all(object_bomb.as_bytes()).unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(reply.contains("\"ok\":false"), "{reply}");

    // The connection is still in sync: a real request gets its answer.
    writeln!(writer, "{{\"op\":\"stats\"}}").unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(
        reply.starts_with("{\"ok\":true,\"op\":\"stats\""),
        "{reply}"
    );

    drop(writer);
    drop(lines);
    server.join().unwrap().unwrap();
}

#[test]
fn concurrent_job_quota_is_enforced_and_recovers() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_concurrent_jobs: 2,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits);

    // Paused workers: every job stays outstanding deterministically.
    client.pause().unwrap();
    let keep = client
        .submit("keep", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap();
    let victim = client
        .submit("victim", Strategy::Awe, "grid:2", SMALL_QASM)
        .unwrap();
    let err = client
        .submit("over", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap_err();
    let ServiceError::Quota { kind, limit, .. } = &err else {
        panic!("expected a quota rejection, got {err}");
    };
    assert_eq!((kind.as_str(), *limit), ("concurrent_jobs", 2));

    // A cancellation's terminal event releases the slot.
    assert!(client.cancel(victim).unwrap());
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Cancelled { job, .. } if job == victim
    ));
    let refill = client
        .submit("refill", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap();
    client.resume().unwrap();
    let mut done = [client.next_event().unwrap(), client.next_event().unwrap()]
        .iter()
        .map(ServiceEvent::job)
        .collect::<Vec<_>>();
    done.sort_unstable();
    let mut want = vec![keep, refill];
    want.sort_unstable();
    assert_eq!(done, want);

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn lifetime_job_quota_is_per_connection() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_total_jobs: 2,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits.clone());

    for label in ["one", "two"] {
        let id = client
            .submit(label, Strategy::Eqm, "grid:2", SMALL_QASM)
            .unwrap();
        assert!(matches!(
            client.next_event().unwrap(),
            ServiceEvent::Done { job, .. } if job == id
        ));
    }
    // Both jobs are long finished — the lifetime budget is still spent.
    let err = client
        .submit("three", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap_err();
    let ServiceError::Quota { kind, limit, .. } = &err else {
        panic!("expected a quota rejection, got {err}");
    };
    assert_eq!((kind.as_str(), *limit), ("total_jobs", 2));
    // …and a sweep that would cross the budget is rejected atomically.
    let err = client
        .submit_sweep(
            "sweep",
            Strategy::Eqm,
            "grid:2",
            "OPENQASM 2.0;\nqreg q[2];\nrz(theta0) q[0];\n",
            &[vec![0.1]],
        )
        .unwrap_err();
    assert!(matches!(err, ServiceError::Quota { .. }), "{err}");
    drop(client);

    // A fresh connection to the same session has a fresh budget.
    let (mut client2, server2) = connect_with_limits(Arc::clone(&session), limits);
    let id = client2
        .submit("fresh", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap();
    assert!(matches!(
        client2.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == id
    ));
    drop(client2);
    server.join().unwrap().unwrap();
    server2.join().unwrap().unwrap();
}

#[test]
fn full_queue_answers_busy_backpressure() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_queue_depth: 1,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits);

    client.pause().unwrap();
    let first = client
        .submit("first", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap();
    let err = client
        .submit("flood", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap_err();
    let ServiceError::Busy {
        queue_depth, limit, ..
    } = &err
    else {
        panic!("expected busy backpressure, got {err}");
    };
    assert_eq!((*queue_depth, *limit), (1, 1));

    // Backpressure is transient: once the queue drains, submits succeed.
    client.resume().unwrap();
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == first
    ));
    let second = client
        .submit("after", Strategy::Eqm, "grid:2", SMALL_QASM)
        .unwrap();
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == second
    ));

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn sweep_binding_and_gate_count_limits_bite() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_sweep_bindings: 2,
        max_circuit_gates: 3,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits);

    let skeleton = "OPENQASM 2.0;\nqreg q[2];\nrz(theta0) q[0];\n";
    let err = client
        .submit_sweep(
            "wide",
            Strategy::Eqm,
            "grid:2",
            skeleton,
            &[vec![0.1], vec![0.2], vec![0.3]],
        )
        .unwrap_err();
    let ServiceError::Quota { kind, limit, .. } = &err else {
        panic!("expected a quota rejection, got {err}");
    };
    assert_eq!((kind.as_str(), *limit), ("sweep_bindings", 2));

    // Four gates against a three-gate cap.
    let fat = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[1];\ncx q[0], q[1];\nh q[0];\n";
    let err = client
        .submit("fat", Strategy::Eqm, "grid:2", fat)
        .unwrap_err();
    let ServiceError::Quota { kind, limit, .. } = &err else {
        panic!("expected a quota rejection, got {err}");
    };
    assert_eq!((kind.as_str(), *limit), ("circuit_gates", 3));

    // At the cap both pass.
    let ids = client
        .submit_sweep(
            "fits",
            Strategy::Eqm,
            "grid:2",
            skeleton,
            &[vec![0.1], vec![0.2]],
        )
        .unwrap();
    assert_eq!(ids.len(), 2);
    for _ in &ids {
        assert!(matches!(
            client.next_event().unwrap(),
            ServiceEvent::Done { .. }
        ));
    }

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn topology_uploads_are_validated_and_usable() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_uploaded_topologies: 2,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits);

    // A 4-node square, uploaded by name and compiled against. The
    // duplicate edge is deduped server-side.
    let square = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 1)];
    assert_eq!(client.upload_topology("square", 4, &square).unwrap(), 4);
    let id = client
        .submit("on-square", Strategy::Eqm, "square", SMALL_QASM)
        .unwrap();
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == id
    ));

    // Every malformed upload is a structured error — `Topology`'s own
    // checks are assert!s, so reaching them would kill the connection.
    for (name, nodes, edges, what) in [
        ("loop", 3, vec![(1usize, 1usize)], "self-loop"),
        ("range", 3, vec![(0, 7)], "out of range"),
        ("empty", 0, vec![], "at least one node"),
        ("huge", 1_000_000_000, vec![(0, 1)], "exceeding the limit"),
        ("", 2, vec![(0, 1)], "name"),
    ] {
        let err = client.upload_topology(name, nodes, &edges).unwrap_err();
        let ServiceError::Remote(message) = &err else {
            panic!("`{name}`: expected a structured rejection, got {err}");
        };
        assert!(message.contains(what), "`{name}`: {message}");
    }

    // Registry quota: a second name fills it, replacement stays free,
    // a third name is a tagged quota rejection.
    assert_eq!(client.upload_topology("pair", 2, &[(0, 1)]).unwrap(), 1);
    assert_eq!(client.upload_topology("square", 4, &square).unwrap(), 4);
    let err = client.upload_topology("third", 2, &[(0, 1)]).unwrap_err();
    let ServiceError::Quota { kind, limit, .. } = &err else {
        panic!("expected a quota rejection, got {err}");
    };
    assert_eq!((kind.as_str(), *limit), ("uploaded_topologies", 2));

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn idle_connection_gets_a_timeout_line_then_a_clean_close() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (client_end, server_end) = loopback();
    let (mut server_reader, server_writer) = server_end.split();
    // The transport-level timeout (SO_RCVTIMEO analogue) plus the limit
    // that labels the goodbye line.
    server_reader.set_read_timeout(Some(Duration::from_millis(50)));
    let limits = ServiceLimits {
        idle_timeout: Some(Duration::from_millis(50)),
        ..ServiceLimits::default()
    };
    let server = std::thread::spawn(move || {
        serve_duplex_with_limits(session, server_reader, server_writer, limits)
    });

    let (reader, mut writer) = client_end.split();
    let mut lines = BufReader::new(reader).lines();
    // Activity resets the clock: a request inside the window is served.
    writeln!(writer, "{{\"op\":\"stats\"}}").unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(
        reply.starts_with("{\"ok\":true,\"op\":\"stats\""),
        "{reply}"
    );

    // Then silence: the server says why it is hanging up, and hangs up.
    let goodbye = lines.next().unwrap().unwrap();
    assert!(goodbye.contains("\"timeout\":true"), "{goodbye}");
    assert!(goodbye.contains("idle timeout"), "{goodbye}");
    assert!(lines.next().is_none(), "connection must be closed after");

    // An idle disconnect is policy, not an I/O failure.
    server.join().unwrap().unwrap();
}

#[test]
fn idle_timeout_over_tcp() {
    use std::net::{TcpListener, TcpStream};
    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        // Sandboxed environments may forbid even loopback sockets; the
        // loopback-transport test above covers the logic.
        Err(_) => return,
    };
    let addr = listener.local_addr().unwrap();
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServiceLimits::default()
    };
    std::thread::spawn(move || {
        let _ = qompress_service::serve_tcp_with_limits(listener, session, limits);
    });

    let stream = TcpStream::connect(addr).unwrap();
    let mut lines = BufReader::new(stream.try_clone().unwrap()).lines();
    let goodbye = lines.next().unwrap().unwrap();
    assert!(goodbye.contains("\"timeout\":true"), "{goodbye}");
    assert!(lines.next().is_none(), "server must close after the line");

    // The listener is still accepting: a second, active client is fine.
    let stream2 = TcpStream::connect(addr).unwrap();
    let reader2 = BufReader::new(stream2.try_clone().unwrap());
    let mut client = ServiceClient::new(reader2, stream2);
    assert_eq!(client.stats().unwrap().service.submitted, 0);
}

#[test]
fn hostile_neighbour_does_not_starve_a_well_behaved_client() {
    let session = Arc::new(Compiler::builder().workers(2).build());
    let (mut attacker, attacker_server) = connect(Arc::clone(&session));
    let (mut victim, victim_server) = connect(Arc::clone(&session));

    let attack = std::thread::spawn(move || {
        for _ in 0..50 {
            let _ = attacker
                .submit("a", Strategy::Eqm, "line:100000000", SMALL_QASM)
                .unwrap_err();
            let _ = attacker
                .submit(
                    "b",
                    Strategy::Eqm,
                    "grid:3",
                    "OPENQASM 2.0;\nqreg q[1000000000];\n",
                )
                .unwrap_err();
            let _ = attacker.poll(u64::MAX).unwrap_err();
        }
        attacker
    });

    // Interleaved with the attack, real work completes normally.
    for round in 0..10 {
        let id = victim
            .submit(
                &format!("legit-{round}"),
                Strategy::Eqm,
                "grid:2",
                SMALL_QASM,
            )
            .unwrap();
        assert!(matches!(
            victim.next_event().unwrap(),
            ServiceEvent::Done { job, .. } if job == id
        ));
    }
    let attacker = attack.join().unwrap();

    let stats = victim.stats().unwrap();
    assert_eq!(stats.service.submitted, 10, "only real work was enqueued");
    assert_eq!(stats.service.completed, 10);

    drop(attacker);
    drop(victim);
    attacker_server.join().unwrap().unwrap();
    victim_server.join().unwrap().unwrap();
}
