//! End-to-end wire-protocol tests: the full protocol over the loopback
//! transport and over real TCP, with byte-identity of streamed results
//! against direct session compilation, deterministic cancellation of
//! queued work, and protocol-error resilience.

use qompress::{BatchJob, Compiler, Strategy};
use qompress_qasm::to_qasm;
use qompress_service::{
    loopback, parse_topology_spec, result_fingerprint, serve_duplex, ServiceClient, ServiceError,
    ServiceEvent,
};
use qompress_workloads::{build, Benchmark};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

type LoopClient =
    ServiceClient<BufReader<qompress_service::LoopbackReader>, qompress_service::LoopbackWriter>;

/// Spawns a loopback server over `session`; returns the connected client
/// and the server thread handle.
fn connect(session: Arc<Compiler>) -> (LoopClient, std::thread::JoinHandle<std::io::Result<()>>) {
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || serve_duplex(session, server_reader, server_writer));
    let (reader, writer) = client_end.split();
    (ServiceClient::new(BufReader::new(reader), writer), server)
}

fn sweep_jobs(size: usize) -> Vec<(String, Strategy, String)> {
    let mut jobs = Vec::new();
    for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
        jobs.push((
            format!("cuccaro/{}", strategy.name()),
            strategy,
            format!("grid:{size}"),
        ));
    }
    jobs.push((
        "cuccaro/awe-line".to_string(),
        Strategy::Awe,
        format!("line:{size}"),
    ));
    jobs
}

#[test]
fn streamed_results_match_direct_compilation_byte_for_byte() {
    let session = Arc::new(Compiler::builder().workers(2).build());
    let (mut client, server) = connect(Arc::clone(&session));

    let size = 6;
    let circuit = build(Benchmark::Cuccaro, size, 7);
    let qasm = to_qasm(&circuit);
    let jobs = sweep_jobs(size);
    let mut expected_fp = HashMap::new();
    for (label, strategy, spec) in &jobs {
        let id = client.submit(label, *strategy, spec, &qasm).unwrap();
        // Compile the identical job directly on a *separate* session: the
        // wire path must stream the byte-identical result (the pipeline
        // is deterministic, so cross-session agreement is exact).
        let reference = Compiler::builder().caching(false).build().compile(
            &circuit,
            &parse_topology_spec(spec).unwrap(),
            *strategy,
        );
        expected_fp.insert(id, (label.clone(), result_fingerprint(&reference)));
    }

    let mut seen = 0;
    while seen < jobs.len() {
        match client.next_event().unwrap() {
            ServiceEvent::Done {
                job,
                label,
                result_fp,
                metrics,
                ..
            } => {
                let (want_label, want_fp) = &expected_fp[&job];
                assert_eq!(&label, want_label);
                assert_eq!(
                    result_fp, *want_fp,
                    "streamed result for `{label}` diverged from direct compilation"
                );
                assert!(metrics.total_eps > 0.0 && metrics.total_eps <= 1.0);
                assert!(metrics.logical_gates > 0);
                seen += 1;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    // Every job observable as done via poll, and the stats add up.
    for id in expected_fp.keys() {
        assert_eq!(client.poll(*id).unwrap(), "done");
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.service.submitted, jobs.len() as u64);
    assert_eq!(stats.service.completed, jobs.len() as u64);
    assert_eq!(stats.service.queued + stats.service.running, 0);

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn submit_sweep_streams_stamped_results_identical_to_direct_compiles() {
    let session = Arc::new(Compiler::builder().workers(2).build());
    let (mut client, server) = connect(Arc::clone(&session));

    // A two-parameter skeleton; theta0 and theta1 each appear twice.
    let qasm = "OPENQASM 2.0;\nqreg q[4];\nh q[0];\nrz(theta0) q[0];\n\
                cx q[0], q[1];\nrx(theta1) q[1];\ncx q[1], q[2];\n\
                ry(theta0) q[2];\ncx q[2], q[3];\nrz(theta1) q[3];\n";
    let bindings: Vec<Vec<f64>> = (0..4)
        .map(|i| vec![0.05 + 0.1 * i as f64, 2.0 - 0.3 * i as f64])
        .collect();
    let ids = client
        .submit_sweep("vqe", Strategy::Eqm, "grid:4", qasm, &bindings)
        .unwrap();
    assert_eq!(ids.len(), bindings.len());

    // Every streamed (stamped) result must be byte-identical to directly
    // compiling the bound circuit on an independent session.
    let skeleton = qompress_qasm::parse_parametric_qasm(qasm).unwrap();
    let reference = Compiler::builder().caching(false).build();
    let topo = parse_topology_spec("grid:4").unwrap();
    let mut want = HashMap::new();
    for (i, (id, angles)) in ids.iter().zip(&bindings).enumerate() {
        let direct = reference.compile(&skeleton.bind(angles), &topo, Strategy::Eqm);
        want.insert(*id, (format!("vqe#{i}"), result_fingerprint(&direct)));
    }
    let mut seen = 0;
    while seen < ids.len() {
        match client.next_event().unwrap() {
            ServiceEvent::Done {
                job,
                label,
                result_fp,
                ..
            } => {
                let (want_label, want_fp) = &want[&job];
                assert_eq!(&label, want_label);
                assert_eq!(
                    result_fp, *want_fp,
                    "stamped result for `{label}` diverged from direct compilation"
                );
                seen += 1;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    for id in &ids {
        assert_eq!(client.poll(*id).unwrap(), "done");
    }

    // Sweep jobs stamp from the skeleton artifact — the concrete result
    // cache is never consulted, and an arity-mismatched sweep is rejected
    // atomically (nothing enqueued).
    let stats = client.stats().unwrap();
    assert_eq!(stats.service.completed, ids.len() as u64);
    assert_eq!((stats.cache.hits, stats.cache.misses), (0, 0));
    let err = client
        .submit_sweep("bad", Strategy::Eqm, "grid:4", qasm, &[vec![0.1]])
        .unwrap_err();
    assert!(matches!(err, ServiceError::Remote(_)), "{err}");
    let stats = client.stats().unwrap();
    assert_eq!(stats.service.submitted, ids.len() as u64);

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn pause_cancel_resume_is_deterministic() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (mut client, server) = connect(Arc::clone(&session));
    let qasm = to_qasm(&build(Benchmark::Bv, 5, 7));

    // Paused workers claim nothing, so every submitted job is still
    // queued when the cancels arrive — fully deterministic.
    client.pause().unwrap();
    let keep = client
        .submit("keep", Strategy::Eqm, "grid:5", &qasm)
        .unwrap();
    let drop_a = client
        .submit("drop-a", Strategy::Awe, "grid:5", &qasm)
        .unwrap();
    let drop_b = client
        .submit("drop-b", Strategy::QubitOnly, "line:5", &qasm)
        .unwrap();
    assert_eq!(client.poll(drop_a).unwrap(), "queued");
    assert!(client.cancel(drop_a).unwrap());
    assert!(client.cancel(drop_b).unwrap());
    assert!(
        !client.cancel(drop_a).unwrap(),
        "double cancel reports false"
    );
    assert_eq!(client.poll(drop_a).unwrap(), "cancelled");
    client.resume().unwrap();

    // Cancellation events stream (they fired at cancel time), then the
    // surviving job's completion.
    let mut cancelled = Vec::new();
    let mut done = None;
    for _ in 0..3 {
        match client.next_event().unwrap() {
            ServiceEvent::Cancelled { job, .. } => cancelled.push(job),
            ServiceEvent::Done { job, .. } => done = Some(job),
            other => panic!("unexpected event {other:?}"),
        }
    }
    cancelled.sort_unstable();
    let mut want = vec![drop_a, drop_b];
    want.sort_unstable();
    assert_eq!(cancelled, want);
    assert_eq!(done, Some(keep));

    let stats = client.stats().unwrap();
    assert_eq!(stats.service.submitted, 3);
    assert_eq!(stats.service.completed, 1);
    assert_eq!(stats.service.cancelled, 2);
    // Cancelled jobs never touched the result cache: exactly one compile.
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, 0);

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn shared_session_serves_wire_hits_from_cache() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (mut client, server) = connect(Arc::clone(&session));
    let qasm = to_qasm(&build(Benchmark::Cuccaro, 5, 7));
    let first = client
        .submit("one", Strategy::Eqm, "grid:5", &qasm)
        .unwrap();
    let e1 = client.next_event().unwrap();
    let second = client
        .submit("two", Strategy::Eqm, "grid:5", &qasm)
        .unwrap();
    let e2 = client.next_event().unwrap();
    assert_eq!(e1.job(), first);
    assert_eq!(e2.job(), second);
    let (ServiceEvent::Done { result_fp: fp1, .. }, ServiceEvent::Done { result_fp: fp2, .. }) =
        (&e1, &e2)
    else {
        panic!("both jobs must complete");
    };
    assert_eq!(fp1, fp2, "repeat job must stream the identical result");
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.hits, 1, "the repeat was a cache hit");
    assert!((stats.hit_rate - 0.5).abs() < 1e-12);
    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn stats_surface_oracle_row_accounting() {
    // Small device on the paper config: exact mode. A line device forces
    // real routing, so distance rows actually materialize.
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (mut client, server) = connect(Arc::clone(&session));
    let qasm = to_qasm(&build(Benchmark::Cuccaro, 8, 7));
    client
        .submit("a", Strategy::QubitOnly, "line:8", &qasm)
        .unwrap();
    client.next_event().unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.oracle.exact_oracles >= 1);
    assert_eq!(stats.oracle.landmark_oracles, 0);
    assert!(stats.oracle.rows_materialized > 0);
    assert!(stats.oracle.approx_bytes > 0);
    drop(client);
    server.join().unwrap().unwrap();

    // Same workload with the exact threshold forced below the device
    // size: landmark mode, bounded rows.
    let mut config = qompress::CompilerConfig::paper();
    config.oracle_exact_threshold = 1;
    let session = Arc::new(Compiler::builder().workers(1).config(config).build());
    let (mut client, server) = connect(Arc::clone(&session));
    let qasm = to_qasm(&build(Benchmark::Cuccaro, 8, 7));
    client
        .submit("a", Strategy::QubitOnly, "line:8", &qasm)
        .unwrap();
    client.next_event().unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.oracle.landmark_oracles >= 1);
    assert_eq!(stats.oracle.exact_oracles, 0);
    assert!(stats.oracle.landmark_rows > 0);
    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn protocol_errors_do_not_end_the_connection() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (mut client, server) = connect(session);
    let qasm = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n";

    // Unknown strategy (request-level), unknown topology and bad QASM
    // (job-level), unknown job id — each a Remote error, none fatal.
    for (label, strategy, spec, qasm) in [
        ("bad-topo", Strategy::Eqm, "torus:4", qasm),
        ("bad-qasm", Strategy::Eqm, "grid:4", "qreg q[2];"),
    ] {
        let err = client.submit(label, strategy, spec, qasm).unwrap_err();
        assert!(matches!(err, ServiceError::Remote(_)), "{label}: {err}");
    }
    assert!(matches!(
        client.poll(999).unwrap_err(),
        ServiceError::Remote(_)
    ));
    assert!(matches!(
        client.cancel(999).unwrap_err(),
        ServiceError::Remote(_)
    ));

    // The connection still works end-to-end.
    let id = client.submit("ok", Strategy::Eqm, "grid:2", qasm).unwrap();
    let event = client.next_event().unwrap();
    assert_eq!(event.job(), id);
    assert!(matches!(event, ServiceEvent::Done { .. }));
    let stats = client.stats().unwrap();
    assert_eq!(stats.service.submitted, 1, "failed submits never enqueued");

    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn failed_jobs_stream_failure_events() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (mut client, server) = connect(session);
    // 6 qubits on a 2-node line: the mapping panics; the wire reports it.
    let qasm = to_qasm(&build(Benchmark::Bv, 6, 7));
    let id = client
        .submit("boom", Strategy::QubitOnly, "line:2", &qasm)
        .unwrap();
    match client.next_event().unwrap() {
        ServiceEvent::Failed { job, error, .. } => {
            assert_eq!(job, id);
            assert!(!error.is_empty());
        }
        other => panic!("expected failure event, got {other:?}"),
    }
    assert_eq!(client.poll(id).unwrap(), "failed");
    // The worker survived; the service keeps serving.
    let ok = client
        .submit("fine", Strategy::QubitOnly, "line:6", &qasm)
        .unwrap();
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == ok
    ));
    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn tcp_round_trip() {
    use std::net::{TcpListener, TcpStream};
    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        // Sandboxed environments may forbid even loopback sockets; the
        // loopback-transport tests above cover the protocol itself.
        Err(_) => return,
    };
    let addr = listener.local_addr().unwrap();
    let session = Arc::new(Compiler::builder().workers(1).build());
    std::thread::spawn(move || {
        let _ = qompress_service::serve_tcp(listener, session);
    });

    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    let mut client = ServiceClient::new(reader, stream);
    let qasm = to_qasm(&build(Benchmark::Cuccaro, 4, 7));
    let id = client
        .submit("tcp", Strategy::Eqm, "grid:4", &qasm)
        .unwrap();
    let event = client.next_event().unwrap();
    assert_eq!(event.job(), id);
    assert!(matches!(event, ServiceEvent::Done { .. }));
    assert_eq!(client.poll(id).unwrap(), "done");

    // Session-wide admin ops are refused on shared listeners: no remote
    // client may stall every other client's jobs.
    let err = client.pause().unwrap_err();
    assert!(matches!(err, ServiceError::Remote(_)), "{err}");
    let err = client.resume().unwrap_err();
    assert!(matches!(err, ServiceError::Remote(_)), "{err}");
    // …and the refusal is non-fatal.
    assert_eq!(client.poll(id).unwrap(), "done");
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    use std::os::unix::net::{UnixListener, UnixStream};
    let dir = std::env::temp_dir().join(format!("qompress-svc-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("wire.sock");
    let _ = std::fs::remove_file(&path);
    let listener = match UnixListener::bind(&path) {
        Ok(l) => l,
        Err(_) => return, // sandboxed FS; protocol covered by loopback
    };
    let session = Arc::new(Compiler::builder().workers(1).build());
    std::thread::spawn(move || {
        let _ = qompress_service::serve_unix(listener, session);
    });

    let stream = UnixStream::connect(&path).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    let mut client = ServiceClient::new(reader, stream);
    let qasm = to_qasm(&build(Benchmark::Bv, 4, 7));
    let id = client
        .submit("unix", Strategy::Awe, "ring:4", &qasm)
        .unwrap();
    assert!(matches!(
        client.next_event().unwrap(),
        ServiceEvent::Done { job, .. } if job == id
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn raw_wire_lines_are_line_delimited_json() {
    // Drive the server with hand-written bytes (no client helper) to pin
    // the wire format itself.
    let session = Arc::new(Compiler::builder().workers(1).build());
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || serve_duplex(session, server_reader, server_writer));
    let (reader, mut writer) = client_end.split();
    let mut lines = BufReader::new(reader).lines();

    writeln!(writer, "this is not json").unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(reply.contains("\"ok\":false"), "{reply}");

    writeln!(writer, "{{\"op\":\"stats\"}}").unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(
        reply.starts_with("{\"ok\":true,\"op\":\"stats\""),
        "{reply}"
    );
    assert!(reply.contains("\"cache\""), "{reply}");

    // compile_batch equivalence over the rawest possible submit.
    let circuit = build(Benchmark::Cuccaro, 4, 7);
    let want = Compiler::builder()
        .caching(false)
        .build()
        .compile_batch(&[BatchJob::new(
            "raw",
            circuit.clone(),
            Strategy::Eqm,
            parse_topology_spec("grid:4").unwrap(),
        )]);
    let want_fp = format!("{:016x}", result_fingerprint(&want.results[0].result));
    let qasm_escaped = qompress_service::json::escape(&to_qasm(&circuit));
    writeln!(
        writer,
        "{{\"op\":\"submit\",\"label\":\"raw\",\"strategy\":\"eqm\",\
         \"topology\":\"grid:4\",\"qasm\":\"{qasm_escaped}\"}}"
    )
    .unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(reply.contains("\"job\":1"), "{reply}");
    let event = lines.next().unwrap().unwrap();
    assert!(event.contains("\"event\":\"done\""), "{event}");
    assert!(
        event.contains(&want_fp),
        "wire fingerprint must equal compile_batch's: {event}"
    );

    drop(writer);
    drop(lines);
    server.join().unwrap().unwrap();
}
