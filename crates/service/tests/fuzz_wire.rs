//! Adversarial fuzzing of the wire layer: the hand-rolled JSON parser
//! under byte soup, mutation and truncation; the nesting-depth bound at
//! its exact boundary; and raw garbage fed to a *live* server, which
//! must keep answering real requests on the same connection.

use proptest::prelude::*;
// `qompress::Strategy` shadows the glob-imported proptest trait of the
// same name; re-import the trait anonymously for `prop_map`.
use proptest::strategy::Strategy as _;
use qompress::{Compiler, Strategy};
use qompress_service::json::{Json, MAX_DEPTH};
use qompress_service::{loopback, serve_duplex, Request};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

/// A canonical request line to mutate: every JSON shape the protocol
/// uses (strings with escapes, numbers, nested arrays) in one line.
fn corpus_line(label_seed: u64) -> String {
    Request::SubmitSweep {
        label: format!("fuzz-{label_seed}"),
        strategy: Strategy::Eqm,
        topology: "grid:4".to_string(),
        qasm: "OPENQASM 2.0;\nqreg q[2];\nrz(theta0) q[0];\ncx q[0], q[1];\n".to_string(),
        bindings: vec![vec![0.25, -1.5], vec![3.0, 0.0]],
    }
    .to_line()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_parser_never_panics_on_byte_soup(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    #[test]
    fn mutated_request_lines_error_or_round_trip(
        label_seed in 0u64..1000,
        at in 0usize..10_000,
        with in (0u16..256).prop_map(|b| b as u8),
        cut in 0usize..10_000,
    ) {
        // One flipped byte: whatever still parses as JSON must survive a
        // Display→parse round-trip exactly (the parser accepted a real
        // value, not a coincidence of leftover state).
        let line = corpus_line(label_seed);
        let mut bytes = line.clone().into_bytes();
        let at = at % bytes.len();
        bytes[at] = with;
        let mutated = String::from_utf8_lossy(&bytes);
        if let Ok(value) = Json::parse(&mutated) {
            let rt = Json::parse(&format!("{value}")).map_err(TestCaseError::fail)?;
            prop_assert_eq!(rt, value);
        }
        // Truncations (the line is pure ASCII, so any cut is a char
        // boundary): the JSON and request parsers reject or accept,
        // never panic.
        let cut = cut % (line.len() + 1);
        let _ = Json::parse(&line[..cut]);
        let _ = Request::parse(&line[..cut]);
    }

    #[test]
    fn nesting_depth_boundary_is_exact(depth in 1usize..100) {
        let nested = "[".repeat(depth) + &"]".repeat(depth);
        prop_assert_eq!(Json::parse(&nested).is_ok(), depth <= MAX_DEPTH);
        let object = "{\"k\":".repeat(depth) + "0" + &"}".repeat(depth);
        prop_assert_eq!(Json::parse(&object).is_ok(), depth <= MAX_DEPTH);
    }
}

proptest! {
    // Each case spawns a live server, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn byte_soup_on_the_live_wire_never_kills_the_server(
        soup in proptest::collection::vec(
            proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..200),
            1..8,
        ),
    ) {
        let session = Arc::new(Compiler::builder().workers(1).build());
        let (client_end, server_end) = loopback();
        let (server_reader, server_writer) = server_end.split();
        let server = std::thread::spawn(move || {
            serve_duplex(session, server_reader, server_writer)
        });
        let (reader, mut writer) = client_end.split();
        let mut lines = BufReader::new(reader).lines();

        for mut garbage in soup {
            // Keep one request per write: embedded newlines would change
            // the request count, not the server's survival.
            garbage.retain(|&b| b != b'\n' && b != b'\r');
            writer.write_all(&garbage).unwrap();
            writer.write_all(b"\n").unwrap();
        }
        // The server must still be in sync: a real request is answered
        // after at most one reply line per garbage line.
        writeln!(writer, "{{\"op\":\"stats\"}}").unwrap();
        let mut answered = false;
        for _ in 0..16 {
            let Some(Ok(reply)) = lines.next() else { break };
            if reply.starts_with("{\"ok\":true,\"op\":\"stats\"") {
                answered = true;
                break;
            }
            prop_assert!(reply.contains("\"ok\":false"), "{}", reply);
        }
        prop_assert!(answered, "server stopped answering after byte soup");

        drop(writer);
        drop(lines);
        server.join().unwrap().unwrap();
    }
}
