//! A blocking client for the wire protocol.
//!
//! [`ServiceClient`] wraps any `(BufRead, Write)` pair — a TCP stream, a
//! Unix socket, or a [`crate::loopback`] end — and demultiplexes the
//! server's single response stream: every request gets exactly one
//! response, and asynchronous completion events arriving in between are
//! buffered for [`ServiceClient::next_event`].

use crate::json::Json;
use crate::proto::{Request, ServiceEvent};
use qompress::{CacheStats, ServiceMetrics, Strategy, TieredCacheStats};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, Write};

/// A client-side failure.
#[derive(Debug)]
pub enum ServiceError {
    /// The transport failed.
    Io(io::Error),
    /// The server's bytes did not parse as protocol messages.
    Protocol(String),
    /// The server rejected a submit with backpressure
    /// (`{"ok":false,"busy":true,…}`): the queue is full — back off and
    /// retry.
    Busy {
        /// The session queue depth the server observed.
        queue_depth: u64,
        /// The configured queue-depth limit.
        limit: u64,
        /// The server's human-readable message.
        message: String,
    },
    /// The server rejected a request for exceeding a per-connection
    /// quota or request-shape limit (`{"ok":false,"quota":…,…}`).
    Quota {
        /// Which limit was hit (e.g. `"concurrent_jobs"`,
        /// `"sweep_bindings"`, `"circuit_gates"`).
        kind: String,
        /// The configured value of that limit.
        limit: u64,
        /// The server's human-readable message.
        message: String,
    },
    /// The server answered `{"ok":false,…}` with this message.
    Remote(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(err) => write!(f, "service I/O error: {err}"),
            ServiceError::Protocol(msg) => write!(f, "service protocol error: {msg}"),
            ServiceError::Busy {
                queue_depth,
                limit,
                message,
            } => write!(f, "service busy (queue {queue_depth}/{limit}): {message}"),
            ServiceError::Quota {
                kind,
                limit,
                message,
            } => write!(f, "service quota `{kind}` (limit {limit}): {message}"),
            ServiceError::Remote(msg) => write!(f, "service error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(err: io::Error) -> Self {
        ServiceError::Io(err)
    }
}

/// Service-side statistics returned by [`ServiceClient::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Job-service lifecycle counters.
    pub service: ServiceMetrics,
    /// Concrete result-cache counters (in-memory tier).
    pub cache: CacheStats,
    /// Skeleton-cache counters (parametric structural compiles).
    pub skeleton_cache: CacheStats,
    /// Counters split by cache tier; with no persistent tier configured
    /// on the server (`--cache-dir`), the disk counters are zero.
    pub tiers: TieredCacheStats,
    /// Server-computed hit rate (redundant with `cache.hit_rate()`, kept
    /// for wire-visibility in logs).
    pub hit_rate: f64,
}

/// A blocking wire-protocol client over any transport.
#[derive(Debug)]
pub struct ServiceClient<R, W> {
    reader: R,
    writer: W,
    pending_events: VecDeque<ServiceEvent>,
}

impl<R: BufRead, W: Write> ServiceClient<R, W> {
    /// Wraps a connected transport.
    pub fn new(reader: R, writer: W) -> Self {
        ServiceClient {
            reader,
            writer,
            pending_events: VecDeque::new(),
        }
    }

    /// Submits one job; returns the server-assigned job id.
    pub fn submit(
        &mut self,
        label: &str,
        strategy: Strategy,
        topology_spec: &str,
        qasm: &str,
    ) -> Result<u64, ServiceError> {
        let response = self.request(&Request::Submit {
            label: label.to_string(),
            strategy,
            topology: topology_spec.to_string(),
            qasm: qasm.to_string(),
        })?;
        response
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("submit response missing `job`".into()))
    }

    /// Submits one parametric skeleton with many angle bindings; returns
    /// the server-assigned job ids, one per binding, in binding order
    /// (binding `i`'s job is labeled `label#i`). The server compiles the
    /// structure once and stamps each binding; completions stream as
    /// ordinary events.
    pub fn submit_sweep(
        &mut self,
        label: &str,
        strategy: Strategy,
        topology_spec: &str,
        qasm: &str,
        bindings: &[Vec<f64>],
    ) -> Result<Vec<u64>, ServiceError> {
        let response = self.request(&Request::SubmitSweep {
            label: label.to_string(),
            strategy,
            topology: topology_spec.to_string(),
            qasm: qasm.to_string(),
            bindings: bindings.to_vec(),
        })?;
        let Some(Json::Arr(ids)) = response.get("jobs") else {
            return Err(ServiceError::Protocol(
                "submit_sweep response missing `jobs`".into(),
            ));
        };
        ids.iter()
            .map(|id| {
                id.as_u64().ok_or_else(|| {
                    ServiceError::Protocol("submit_sweep `jobs` entry is not an id".into())
                })
            })
            .collect()
    }

    /// Uploads a named topology as an explicit edge list; later submits
    /// on this connection may pass `name` as their topology spec
    /// (uploaded names shadow the built-in `kind:size` constructors).
    /// Returns the server-side edge count, which can be smaller than
    /// `edges.len()` when the list carries duplicates.
    pub fn upload_topology(
        &mut self,
        name: &str,
        nodes: usize,
        edges: &[(usize, usize)],
    ) -> Result<u64, ServiceError> {
        let response = self.request(&Request::Topology {
            name: name.to_string(),
            nodes,
            edges: edges.to_vec(),
        })?;
        response
            .get("edges")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("topology response missing `edges`".into()))
    }

    /// Queries one job's lifecycle status name
    /// (`"queued"`/`"running"`/`"done"`/`"cancelled"`/`"failed"`).
    pub fn poll(&mut self, job: u64) -> Result<String, ServiceError> {
        let response = self.request(&Request::Poll { job })?;
        response
            .get("status")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServiceError::Protocol("poll response missing `status`".into()))
    }

    /// Cancels a still-queued job; `Ok(true)` iff this call cancelled it.
    pub fn cancel(&mut self, job: u64) -> Result<bool, ServiceError> {
        let response = self.request(&Request::Cancel { job })?;
        response
            .get("cancelled")
            .and_then(Json::as_bool)
            .ok_or_else(|| ServiceError::Protocol("cancel response missing `cancelled`".into()))
    }

    /// Snapshots the server's job-service metrics and cache stats.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServiceError> {
        let response = self.request(&Request::Stats)?;
        let counter = |name: &str| -> Result<u64, ServiceError> {
            response
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::Protocol(format!("stats missing `{name}`")))
        };
        let cache = response
            .get("cache")
            .ok_or_else(|| ServiceError::Protocol("stats missing `cache`".into()))?;
        let flat_stats = |obj: &Json, which: &str| -> Result<CacheStats, ServiceError> {
            let field = |name: &str| -> Result<u64, ServiceError> {
                obj.get(name).and_then(Json::as_u64).ok_or_else(|| {
                    ServiceError::Protocol(format!("stats missing {which} `{name}`"))
                })
            };
            Ok(CacheStats {
                hits: field("hits")?,
                misses: field("misses")?,
                evictions: field("evictions")?,
            })
        };
        let skeleton = response
            .get("skeleton_cache")
            .ok_or_else(|| ServiceError::Protocol("stats missing `skeleton_cache`".into()))?;
        let tiers = response
            .get("tiers")
            .ok_or_else(|| ServiceError::Protocol("stats missing `tiers`".into()))?;
        let tier_counter = |name: &str| -> Result<u64, ServiceError> {
            tiers
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::Protocol(format!("stats missing tiers `{name}`")))
        };
        Ok(StatsSnapshot {
            service: ServiceMetrics {
                submitted: counter("submitted")?,
                queued: counter("queued")?,
                running: counter("running")?,
                completed: counter("completed")?,
                cancelled: counter("cancelled")?,
                failed: counter("failed")?,
            },
            cache: flat_stats(cache, "cache")?,
            skeleton_cache: flat_stats(skeleton, "skeleton_cache")?,
            tiers: TieredCacheStats {
                memory_hits: tier_counter("memory_hits")?,
                disk_hits: tier_counter("disk_hits")?,
                misses: tier_counter("misses")?,
                memory_evictions: tier_counter("memory_evictions")?,
                disk_writes: tier_counter("disk_writes")?,
                disk_rejects: tier_counter("disk_rejects")?,
                disk_write_errors: tier_counter("disk_write_errors")?,
            },
            hit_rate: cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }

    /// Pauses the server session's workers (queued jobs stay queued and
    /// cancellable until [`ServiceClient::resume`]).
    pub fn pause(&mut self) -> Result<(), ServiceError> {
        self.request(&Request::Pause).map(|_| ())
    }

    /// Resumes the server session's workers.
    pub fn resume(&mut self) -> Result<(), ServiceError> {
        self.request(&Request::Resume).map(|_| ())
    }

    /// Returns the next completion event, blocking until one arrives.
    /// Events buffered while reading responses are returned first, in
    /// arrival order.
    pub fn next_event(&mut self) -> Result<ServiceEvent, ServiceError> {
        if let Some(event) = self.pending_events.pop_front() {
            return Ok(event);
        }
        let value = self.read_message()?;
        match ServiceEvent::parse(&value).map_err(ServiceError::Protocol)? {
            Some(event) => Ok(event),
            None => Err(ServiceError::Protocol(format!(
                "expected an event, got response `{value}`"
            ))),
        }
    }

    /// Sends one request and reads its response, buffering any events
    /// that arrive first.
    fn request(&mut self, request: &Request) -> Result<Json, ServiceError> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        loop {
            let value = self.read_message()?;
            if let Some(event) = ServiceEvent::parse(&value).map_err(ServiceError::Protocol)? {
                self.pending_events.push_back(event);
                continue;
            }
            return match value.get("ok").and_then(Json::as_bool) {
                Some(true) => Ok(value),
                Some(false) => Err(Self::classify_rejection(&value)),
                None => Err(ServiceError::Protocol(format!(
                    "message is neither response nor event: `{value}`"
                ))),
            };
        }
    }

    /// Maps an `{"ok":false,…}` response to the most specific error:
    /// backpressure (`busy`), a tagged quota (`quota`), or the generic
    /// [`ServiceError::Remote`].
    fn classify_rejection(value: &Json) -> ServiceError {
        let message = value
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified server error")
            .to_string();
        if value.get("busy").and_then(Json::as_bool) == Some(true) {
            return ServiceError::Busy {
                queue_depth: value.get("queue_depth").and_then(Json::as_u64).unwrap_or(0),
                limit: value.get("limit").and_then(Json::as_u64).unwrap_or(0),
                message,
            };
        }
        if let Some(kind) = value.get("quota").and_then(Json::as_str) {
            return ServiceError::Quota {
                kind: kind.to_string(),
                limit: value.get("limit").and_then(Json::as_u64).unwrap_or(0),
                message,
            };
        }
        ServiceError::Remote(message)
    }

    /// Reads one non-empty line and parses it.
    fn read_message(&mut self) -> Result<Json, ServiceError> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ServiceError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Json::parse(line.trim()).map_err(ServiceError::Protocol);
        }
    }
}
