//! A blocking client for the wire protocol.
//!
//! [`ServiceClient`] wraps any `(BufRead, Write)` pair — a TCP stream, a
//! Unix socket, or a [`crate::loopback`] end — and demultiplexes the
//! server's single response stream: every request gets exactly one
//! response, and asynchronous completion events arriving in between are
//! buffered for [`ServiceClient::next_event`].
//!
//! ## Retry and reconnect
//!
//! Submits can be made resilient with a [`RetryPolicy`]
//! ([`ServiceClient::set_retry_policy`]): `busy` backpressure rejections
//! and — when a reconnect hook is installed
//! ([`ServiceClient::set_reconnect`]) — transport failures are retried
//! with exponential backoff and deterministic jitter, up to the policy's
//! attempt and deadline caps. Resubmitting after a reconnect is safe
//! because results are **content-addressed**: a duplicate submit of the
//! same job is served from the server's cache, never recompiled into a
//! divergent result. Exact retry traffic is reported by
//! [`ServiceClient::retry_stats`].

use crate::json::Json;
use crate::proto::{Request, ServiceEvent};
use qompress::{BreakerState, CacheStats, OracleStats, ServiceMetrics, Strategy, TieredCacheStats};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// A client-side failure.
#[derive(Debug)]
pub enum ServiceError {
    /// The transport failed.
    Io(io::Error),
    /// The server's bytes did not parse as protocol messages.
    Protocol(String),
    /// The server rejected a submit with backpressure
    /// (`{"ok":false,"busy":true,…}`): the queue is full — back off and
    /// retry.
    Busy {
        /// The session queue depth the server observed.
        queue_depth: u64,
        /// The configured queue-depth limit.
        limit: u64,
        /// The server's human-readable message.
        message: String,
    },
    /// The server rejected a request for exceeding a per-connection
    /// quota or request-shape limit (`{"ok":false,"quota":…,…}`).
    Quota {
        /// Which limit was hit (e.g. `"concurrent_jobs"`,
        /// `"sweep_bindings"`, `"circuit_gates"`).
        kind: String,
        /// The configured value of that limit.
        limit: u64,
        /// The server's human-readable message.
        message: String,
    },
    /// The server is draining toward shutdown
    /// (`{"ok":false,"draining":true,…}`): it accepts no new jobs and
    /// will not recover on this connection — submit elsewhere. Never
    /// retried by a [`RetryPolicy`].
    Draining {
        /// The server's human-readable message.
        message: String,
    },
    /// The server answered `{"ok":false,…}` with this message.
    Remote(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(err) => write!(f, "service I/O error: {err}"),
            ServiceError::Protocol(msg) => write!(f, "service protocol error: {msg}"),
            ServiceError::Busy {
                queue_depth,
                limit,
                message,
            } => write!(f, "service busy (queue {queue_depth}/{limit}): {message}"),
            ServiceError::Quota {
                kind,
                limit,
                message,
            } => write!(f, "service quota `{kind}` (limit {limit}): {message}"),
            ServiceError::Draining { message } => write!(f, "service draining: {message}"),
            ServiceError::Remote(msg) => write!(f, "service error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(err: io::Error) -> Self {
        ServiceError::Io(err)
    }
}

/// Service-side statistics returned by [`ServiceClient::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Job-service lifecycle counters.
    pub service: ServiceMetrics,
    /// Concrete result-cache counters (in-memory tier).
    pub cache: CacheStats,
    /// Skeleton-cache counters (parametric structural compiles).
    pub skeleton_cache: CacheStats,
    /// Counters split by cache tier; with no persistent tier configured
    /// on the server (`--cache-dir`), the disk counters are zero.
    pub tiers: TieredCacheStats,
    /// Distance-oracle row/memory accounting across the server's
    /// registered topologies (landmark-mode devices report their
    /// O(K·V) footprint here).
    pub oracle: OracleStats,
    /// Server-computed hit rate (redundant with `cache.hit_rate()`, kept
    /// for wire-visibility in logs).
    pub hit_rate: f64,
}

/// How a [`ServiceClient`] retries submits that hit transient failures:
/// `busy` backpressure, and — with a reconnect hook installed —
/// transport errors.
///
/// The delay before retry `i` (zero-based) is `base_delay · 2^i`,
/// capped at `max_delay`, then scaled into `[0.5, 1.0)` by
/// deterministic jitter (a hash of `seed` and the retry index — two
/// clients with different seeds desynchronize, one client replays
/// identically). Retries stop when `max_attempts` total attempts were
/// made or the next sleep would cross `deadline`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, first try included (clamped to ≥ 1; `1` means no
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_delay: Duration,
    /// Wall-clock budget across all attempts; `None` means unbounded.
    pub deadline: Option<Duration>,
    /// Scale each sleep by a deterministic factor in `[0.5, 1.0)`.
    pub jitter: bool,
    /// Seed of the jitter hash.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately (the default).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            deadline: None,
            jitter: false,
            seed: 0,
        }
    }

    /// A production-shaped policy: 6 attempts, 25 ms base delay doubling
    /// to a 1 s cap, 30 s deadline, jitter on.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            deadline: Some(Duration::from_secs(30)),
            jitter: true,
            seed: 0x716f_6d70_7265_7373, // "qompress"
        }
    }

    /// The backoff sleep before retry `retry_index` (zero-based):
    /// exponential, capped, jittered.
    pub fn delay_for(&self, retry_index: u32) -> Duration {
        let unjittered = self
            .base_delay
            .saturating_mul(1u32.checked_shl(retry_index).unwrap_or(u32::MAX))
            .min(self.max_delay);
        if !self.jitter {
            return unjittered;
        }
        let hash = splitmix64(self.seed ^ u64::from(retry_index) ^ 0x9E37_79B9_7F4A_7C15);
        // Top 53 bits → a uniform fraction in [0, 1), folded to [0.5, 1).
        let fraction = 0.5 + (hash >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        unjittered.mul_f64(fraction)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// One round of the splitmix64 mixer — a tiny, dependency-free way to
/// turn (seed, retry index) into uniform jitter bits.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact retry traffic of one [`ServiceClient`] (see
/// [`ServiceClient::retry_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Submits retried after a `busy` backpressure rejection.
    pub busy_retries: u64,
    /// Transports re-established by the reconnect hook.
    pub reconnects: u64,
    /// Retryable failures abandoned at the attempt or deadline cap (the
    /// error then surfaced to the caller).
    pub give_ups: u64,
}

/// The reconnect hook: dials a fresh transport to the same server.
type ReconnectFn<R, W> = Box<dyn FnMut() -> io::Result<(R, W)> + Send>;

/// A blocking wire-protocol client over any transport.
pub struct ServiceClient<R, W> {
    reader: R,
    writer: W,
    pending_events: VecDeque<ServiceEvent>,
    retry: RetryPolicy,
    retry_stats: RetryStats,
    reconnect: Option<ReconnectFn<R, W>>,
}

impl<R, W> fmt::Debug for ServiceClient<R, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceClient")
            .field("pending_events", &self.pending_events.len())
            .field("retry", &self.retry)
            .field("retry_stats", &self.retry_stats)
            .field("reconnect", &self.reconnect.is_some())
            .finish_non_exhaustive()
    }
}

impl<R: BufRead, W: Write> ServiceClient<R, W> {
    /// Wraps a connected transport (no retries — see
    /// [`ServiceClient::set_retry_policy`]).
    pub fn new(reader: R, writer: W) -> Self {
        ServiceClient {
            reader,
            writer,
            pending_events: VecDeque::new(),
            retry: RetryPolicy::none(),
            retry_stats: RetryStats::default(),
            reconnect: None,
        }
    }

    /// Sets the retry policy applied to [`ServiceClient::submit`] and
    /// [`ServiceClient::submit_sweep`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Builder-style [`ServiceClient::set_retry_policy`].
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Installs a reconnect hook: on a transport error during a
    /// retryable request, the hook dials a fresh `(reader, writer)` pair
    /// to the same server and the request is resubmitted there (safe:
    /// results are content-addressed, so a duplicate submit is a cache
    /// hit, never a divergent recompile). Without a hook, transport
    /// errors are never retried.
    pub fn set_reconnect(&mut self, dial: impl FnMut() -> io::Result<(R, W)> + Send + 'static) {
        self.reconnect = Some(Box::new(dial));
    }

    /// Exact retry traffic so far (zeros until a retry happens).
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Submits one job; returns the server-assigned job id.
    pub fn submit(
        &mut self,
        label: &str,
        strategy: Strategy,
        topology_spec: &str,
        qasm: &str,
    ) -> Result<u64, ServiceError> {
        let response = self.request_retrying(&Request::Submit {
            label: label.to_string(),
            strategy,
            topology: topology_spec.to_string(),
            qasm: qasm.to_string(),
        })?;
        response
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("submit response missing `job`".into()))
    }

    /// Submits one parametric skeleton with many angle bindings; returns
    /// the server-assigned job ids, one per binding, in binding order
    /// (binding `i`'s job is labeled `label#i`). The server compiles the
    /// structure once and stamps each binding; completions stream as
    /// ordinary events.
    pub fn submit_sweep(
        &mut self,
        label: &str,
        strategy: Strategy,
        topology_spec: &str,
        qasm: &str,
        bindings: &[Vec<f64>],
    ) -> Result<Vec<u64>, ServiceError> {
        let response = self.request_retrying(&Request::SubmitSweep {
            label: label.to_string(),
            strategy,
            topology: topology_spec.to_string(),
            qasm: qasm.to_string(),
            bindings: bindings.to_vec(),
        })?;
        let Some(Json::Arr(ids)) = response.get("jobs") else {
            return Err(ServiceError::Protocol(
                "submit_sweep response missing `jobs`".into(),
            ));
        };
        ids.iter()
            .map(|id| {
                id.as_u64().ok_or_else(|| {
                    ServiceError::Protocol("submit_sweep `jobs` entry is not an id".into())
                })
            })
            .collect()
    }

    /// Uploads a named topology as an explicit edge list; later submits
    /// on this connection may pass `name` as their topology spec
    /// (uploaded names shadow the built-in `kind:size` constructors).
    /// Returns the server-side edge count, which can be smaller than
    /// `edges.len()` when the list carries duplicates.
    pub fn upload_topology(
        &mut self,
        name: &str,
        nodes: usize,
        edges: &[(usize, usize)],
    ) -> Result<u64, ServiceError> {
        let response = self.request(&Request::Topology {
            name: name.to_string(),
            nodes,
            edges: edges.to_vec(),
        })?;
        response
            .get("edges")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("topology response missing `edges`".into()))
    }

    /// Queries one job's lifecycle status name
    /// (`"queued"`/`"running"`/`"done"`/`"cancelled"`/`"failed"`).
    pub fn poll(&mut self, job: u64) -> Result<String, ServiceError> {
        let response = self.request(&Request::Poll { job })?;
        response
            .get("status")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServiceError::Protocol("poll response missing `status`".into()))
    }

    /// Cancels a still-queued job; `Ok(true)` iff this call cancelled it.
    pub fn cancel(&mut self, job: u64) -> Result<bool, ServiceError> {
        let response = self.request(&Request::Cancel { job })?;
        response
            .get("cancelled")
            .and_then(Json::as_bool)
            .ok_or_else(|| ServiceError::Protocol("cancel response missing `cancelled`".into()))
    }

    /// Snapshots the server's job-service metrics and cache stats.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServiceError> {
        let response = self.request(&Request::Stats)?;
        let counter = |name: &str| -> Result<u64, ServiceError> {
            response
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::Protocol(format!("stats missing `{name}`")))
        };
        let cache = response
            .get("cache")
            .ok_or_else(|| ServiceError::Protocol("stats missing `cache`".into()))?;
        let flat_stats = |obj: &Json, which: &str| -> Result<CacheStats, ServiceError> {
            let field = |name: &str| -> Result<u64, ServiceError> {
                obj.get(name).and_then(Json::as_u64).ok_or_else(|| {
                    ServiceError::Protocol(format!("stats missing {which} `{name}`"))
                })
            };
            Ok(CacheStats {
                hits: field("hits")?,
                misses: field("misses")?,
                evictions: field("evictions")?,
            })
        };
        let skeleton = response
            .get("skeleton_cache")
            .ok_or_else(|| ServiceError::Protocol("stats missing `skeleton_cache`".into()))?;
        let tiers = response
            .get("tiers")
            .ok_or_else(|| ServiceError::Protocol("stats missing `tiers`".into()))?;
        let tier_counter = |name: &str| -> Result<u64, ServiceError> {
            tiers
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::Protocol(format!("stats missing tiers `{name}`")))
        };
        let oracle = response
            .get("oracle")
            .ok_or_else(|| ServiceError::Protocol("stats missing `oracle`".into()))?;
        let oracle_counter = |name: &str| -> Result<usize, ServiceError> {
            oracle
                .get(name)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| ServiceError::Protocol(format!("stats missing oracle `{name}`")))
        };
        Ok(StatsSnapshot {
            service: ServiceMetrics {
                submitted: counter("submitted")?,
                queued: counter("queued")?,
                running: counter("running")?,
                completed: counter("completed")?,
                cancelled: counter("cancelled")?,
                failed: counter("failed")?,
            },
            cache: flat_stats(cache, "cache")?,
            skeleton_cache: flat_stats(skeleton, "skeleton_cache")?,
            tiers: TieredCacheStats {
                memory_hits: tier_counter("memory_hits")?,
                disk_hits: tier_counter("disk_hits")?,
                misses: tier_counter("misses")?,
                memory_evictions: tier_counter("memory_evictions")?,
                disk_writes: tier_counter("disk_writes")?,
                disk_rejects: tier_counter("disk_rejects")?,
                disk_write_errors: tier_counter("disk_write_errors")?,
                disk_read_errors: tier_counter("disk_read_errors")?,
                disk_skipped: tier_counter("disk_skipped")?,
                breaker_trips: tier_counter("breaker_trips")?,
                breaker_probes: tier_counter("breaker_probes")?,
                breaker_state: tiers
                    .get("breaker_state")
                    .and_then(Json::as_str)
                    .and_then(BreakerState::from_name)
                    .ok_or_else(|| {
                        ServiceError::Protocol("stats missing tiers `breaker_state`".into())
                    })?,
            },
            oracle: OracleStats {
                exact_oracles: oracle_counter("exact_oracles")?,
                landmark_oracles: oracle_counter("landmark_oracles")?,
                rows_materialized: oracle_counter("rows_materialized")?,
                landmark_rows: oracle_counter("landmark_rows")?,
                approx_bytes: oracle_counter("approx_bytes")?,
            },
            hit_rate: cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }

    /// Pauses the server session's workers (queued jobs stay queued and
    /// cancellable until [`ServiceClient::resume`]).
    pub fn pause(&mut self) -> Result<(), ServiceError> {
        self.request(&Request::Pause).map(|_| ())
    }

    /// Resumes the server session's workers.
    pub fn resume(&mut self) -> Result<(), ServiceError> {
        self.request(&Request::Resume).map(|_| ())
    }

    /// Returns the next completion event, blocking until one arrives.
    /// Events buffered while reading responses are returned first, in
    /// arrival order.
    pub fn next_event(&mut self) -> Result<ServiceEvent, ServiceError> {
        if let Some(event) = self.pending_events.pop_front() {
            return Ok(event);
        }
        let value = self.read_message()?;
        match ServiceEvent::parse(&value).map_err(ServiceError::Protocol)? {
            Some(event) => Ok(event),
            None => Err(ServiceError::Protocol(format!(
                "expected an event, got response `{value}`"
            ))),
        }
    }

    /// [`ServiceClient::request`] under the client's [`RetryPolicy`]:
    /// `busy` rejections — and, with a reconnect hook, transport errors
    /// — are retried with backoff until the policy's attempt or
    /// deadline cap. Everything else surfaces immediately.
    fn request_retrying(&mut self, request: &Request) -> Result<Json, ServiceError> {
        let policy = self.retry;
        let started = Instant::now();
        let mut retry_index: u32 = 0;
        loop {
            let err = match self.request(request) {
                Ok(value) => return Ok(value),
                Err(err) => err,
            };
            let retryable = match &err {
                ServiceError::Busy { .. } => true,
                ServiceError::Io(_) => self.reconnect.is_some(),
                _ => false,
            };
            // A single-attempt policy is "retries off": errors surface
            // untouched and uncounted, exactly like the pre-policy client.
            if !retryable || policy.max_attempts <= 1 {
                return Err(err);
            }
            if u64::from(retry_index) + 1 >= u64::from(policy.max_attempts) {
                self.retry_stats.give_ups += 1;
                return Err(err);
            }
            let delay = policy.delay_for(retry_index);
            if let Some(deadline) = policy.deadline {
                if started.elapsed() + delay > deadline {
                    self.retry_stats.give_ups += 1;
                    return Err(err);
                }
            }
            std::thread::sleep(delay);
            match err {
                ServiceError::Busy { .. } => {
                    self.retry_stats.busy_retries += 1;
                }
                ServiceError::Io(_) => {
                    // Dial a fresh transport; a failed dial just burns
                    // this attempt and backs off further.
                    let dial = self.reconnect.as_mut().expect("retryable implies hook");
                    if let Ok((reader, writer)) = dial() {
                        self.reader = reader;
                        self.writer = writer;
                        self.retry_stats.reconnects += 1;
                    }
                }
                _ => unreachable!("only busy/io are retryable"),
            }
            retry_index += 1;
        }
    }

    /// Sends one request and reads its response, buffering any events
    /// that arrive first.
    fn request(&mut self, request: &Request) -> Result<Json, ServiceError> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        loop {
            let value = self.read_message()?;
            if let Some(event) = ServiceEvent::parse(&value).map_err(ServiceError::Protocol)? {
                self.pending_events.push_back(event);
                continue;
            }
            return match value.get("ok").and_then(Json::as_bool) {
                Some(true) => Ok(value),
                Some(false) => Err(Self::classify_rejection(&value)),
                None => Err(ServiceError::Protocol(format!(
                    "message is neither response nor event: `{value}`"
                ))),
            };
        }
    }

    /// Maps an `{"ok":false,…}` response to the most specific error:
    /// backpressure (`busy`), a tagged quota (`quota`), or the generic
    /// [`ServiceError::Remote`].
    fn classify_rejection(value: &Json) -> ServiceError {
        let message = value
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified server error")
            .to_string();
        // Draining wins over busy: a draining server is *not* coming
        // back, so the retry loop must not treat it as backpressure.
        if value.get("draining").and_then(Json::as_bool) == Some(true) {
            return ServiceError::Draining { message };
        }
        if value.get("busy").and_then(Json::as_bool) == Some(true) {
            return ServiceError::Busy {
                queue_depth: value.get("queue_depth").and_then(Json::as_u64).unwrap_or(0),
                limit: value.get("limit").and_then(Json::as_u64).unwrap_or(0),
                message,
            };
        }
        if let Some(kind) = value.get("quota").and_then(Json::as_str) {
            return ServiceError::Quota {
                kind: kind.to_string(),
                limit: value.get("limit").and_then(Json::as_u64).unwrap_or(0),
                message,
            };
        }
        ServiceError::Remote(message)
    }

    /// Reads one non-empty line and parses it.
    fn read_message(&mut self) -> Result<Json, ServiceError> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ServiceError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Json::parse(line.trim()).map_err(ServiceError::Protocol);
        }
    }
}
