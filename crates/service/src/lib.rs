//! # qompress-service
//!
//! A wire-protocol front-end for the [`qompress`] compiler's session job
//! service: submit OpenQASM circuits over a socket, stream per-job
//! completions as they finish, cancel still-queued work mid-sweep, and
//! read exact queue/cache metrics — all against one long-lived
//! [`qompress::Compiler`] session whose worker pool, topology registry
//! and result cache are shared by every connection.
//!
//! The protocol is line-delimited JSON (one object per line, both
//! directions) — see [`proto`] for the exact message shapes. Transports:
//!
//! * **TCP** — [`serve_tcp`] over a caller-bound `TcpListener`;
//! * **Unix socket** — [`serve_unix`] (unix only);
//! * **in-memory loopback** — [`loopback`], for tests and the CI smoke
//!   example (`examples/service_sweep.rs` at the workspace root), which
//!   exercise the full protocol with no kernel sockets at all.
//!
//! [`ServiceClient`] is a blocking client over any of the three.
//!
//! ## Hardening: limits, quotas, backpressure
//!
//! The server assumes hostile clients. Every entry point has a
//! `*_with_limits` twin taking a [`ServiceLimits`] (the plain forms use
//! [`ServiceLimits::default`]): request-shape bounds (circuit
//! qubits/gates, topology size, sweep width), per-connection quotas
//! (outstanding and lifetime job counts, uploaded topologies),
//! queue-depth backpressure and an idle-connection timeout. Rejections
//! are structured, machine-readable response lines — the connection
//! stays usable:
//!
//! * shape/parse violations → `{"ok":false,"error":"…"}`;
//! * quota violations → `{"ok":false,"error":"…","quota":"<kind>",
//!   "limit":N}` ([`ServiceError::Quota`] client-side);
//! * a submit against a full queue → `{"ok":false,"error":"…",
//!   "busy":true,"queue_depth":D,"limit":N}` ([`ServiceError::Busy`]) —
//!   back off and retry;
//! * an idle connection is written one final `{"ok":false,"error":"…",
//!   "timeout":true}` line, then closed.
//!
//! ## Resilience: retry, reconnect, drain
//!
//! [`ServiceClient`] can retry transient failures under a
//! [`RetryPolicy`] (exponential backoff with deterministic jitter,
//! attempt/deadline caps): `busy` rejections always qualify, and
//! transport errors qualify once a reconnect hook is installed
//! ([`ServiceClient::set_reconnect`]) — resubmitting after a reconnect
//! is safe because results are content-addressed. On the server side, a
//! [`DrainHandle`] turns the `*_draining` entry points
//! ([`serve_tcp_draining`], [`serve_unix_draining`],
//! [`serve_duplex_draining`]) into gracefully stoppable servers: once
//! tripped, the accept loop returns, new submits answer
//! `{"ok":false,"draining":true,…}` ([`ServiceError::Draining`], never
//! retried), and in-flight jobs finish with their events still
//! streaming.
//!
//! Below the limits sit parser-level DoS bounds that hold regardless of
//! configuration: request lines are capped at 16 MiB, JSON nesting at
//! [`json::MAX_DEPTH`] levels, QASM register totals at the configured
//! qubit cap (checked before allocation), and topology specs at the
//! configured node cap (checked before construction).
//!
//! Clients may also upload a custom topology as an explicit edge list
//! (`{"op":"topology","name":…,"nodes":N,"edges":[[a,b],…]}` /
//! [`ServiceClient::upload_topology`]); the name then acts as a
//! topology spec for later submits on the same connection, shadowing
//! the built-in `kind:size` constructors.
//!
//! ```
//! use qompress::{Compiler, Strategy};
//! use qompress_service::{loopback, serve_duplex, ServiceClient};
//! use std::io::BufReader;
//! use std::sync::Arc;
//!
//! let session = Arc::new(Compiler::builder().workers(1).build());
//! let (client_end, server_end) = loopback();
//! let (server_reader, server_writer) = server_end.split();
//! let server = std::thread::spawn(move || {
//!     serve_duplex(session, server_reader, server_writer)
//! });
//!
//! let (reader, writer) = client_end.split();
//! let mut client = ServiceClient::new(BufReader::new(reader), writer);
//! let qasm = "OPENQASM 2.0;\nqreg q[3];\nh q;\ncx q[0], q[1];\n";
//! let job = client.submit("ghz", Strategy::Eqm, "grid:3", qasm).unwrap();
//! let event = client.next_event().unwrap();
//! assert_eq!(event.job(), job);
//! drop(client); // EOF ends the connection…
//! server.join().unwrap().unwrap(); // …and the server thread returns.
//! ```

#![warn(missing_docs)]

mod drain;
pub mod json;
mod limits;
mod loopback;
pub mod proto;

mod client;
mod server;

pub use client::{RetryPolicy, RetryStats, ServiceClient, ServiceError, StatsSnapshot};
pub use drain::DrainHandle;
pub use limits::{ServiceLimits, DEFAULT_DISK_CACHE_BYTES};
pub use loopback::{loopback, LoopbackEnd, LoopbackReader, LoopbackWriter};
pub use proto::{
    parse_topology_spec, parse_topology_spec_bounded, result_fingerprint, strategy_by_name,
    Request, ServiceEvent, WireMetrics, DEFAULT_MAX_TOPOLOGY_NODES,
};
pub use server::{
    serve_duplex, serve_duplex_draining, serve_duplex_with_limits, serve_tcp, serve_tcp_draining,
    serve_tcp_with_limits,
};
#[cfg(unix)]
pub use server::{serve_unix, serve_unix_draining, serve_unix_with_limits};
