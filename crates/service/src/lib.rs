//! # qompress-service
//!
//! A wire-protocol front-end for the [`qompress`] compiler's session job
//! service: submit OpenQASM circuits over a socket, stream per-job
//! completions as they finish, cancel still-queued work mid-sweep, and
//! read exact queue/cache metrics — all against one long-lived
//! [`qompress::Compiler`] session whose worker pool, topology registry
//! and result cache are shared by every connection.
//!
//! The protocol is line-delimited JSON (one object per line, both
//! directions) — see [`proto`] for the exact message shapes. Transports:
//!
//! * **TCP** — [`serve_tcp`] over a caller-bound `TcpListener`;
//! * **Unix socket** — [`serve_unix`] (unix only);
//! * **in-memory loopback** — [`loopback`], for tests and the CI smoke
//!   example (`examples/service_sweep.rs` at the workspace root), which
//!   exercise the full protocol with no kernel sockets at all.
//!
//! [`ServiceClient`] is a blocking client over any of the three.
//!
//! ```
//! use qompress::{Compiler, Strategy};
//! use qompress_service::{loopback, serve_duplex, ServiceClient};
//! use std::io::BufReader;
//! use std::sync::Arc;
//!
//! let session = Arc::new(Compiler::builder().workers(1).build());
//! let (client_end, server_end) = loopback();
//! let (server_reader, server_writer) = server_end.split();
//! let server = std::thread::spawn(move || {
//!     serve_duplex(session, server_reader, server_writer)
//! });
//!
//! let (reader, writer) = client_end.split();
//! let mut client = ServiceClient::new(BufReader::new(reader), writer);
//! let qasm = "OPENQASM 2.0;\nqreg q[3];\nh q;\ncx q[0], q[1];\n";
//! let job = client.submit("ghz", Strategy::Eqm, "grid:3", qasm).unwrap();
//! let event = client.next_event().unwrap();
//! assert_eq!(event.job(), job);
//! drop(client); // EOF ends the connection…
//! server.join().unwrap().unwrap(); // …and the server thread returns.
//! ```

#![warn(missing_docs)]

pub mod json;
mod loopback;
pub mod proto;

mod client;
mod server;

pub use client::{ServiceClient, ServiceError, StatsSnapshot};
pub use loopback::{loopback, LoopbackEnd, LoopbackReader, LoopbackWriter};
pub use proto::{
    parse_topology_spec, result_fingerprint, strategy_by_name, Request, ServiceEvent, WireMetrics,
};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{serve_duplex, serve_tcp};
