//! The line-delimited JSON wire protocol: request/response/event shapes
//! shared by the server and the bundled client.
//!
//! Every message is one JSON object on one line (`\n`-terminated). The
//! client sends **requests** and reads **responses** (exactly one per
//! request, in request order) interleaved with asynchronous **events**
//! (one per submitted job reaching a terminal state, in completion
//! order). A job's event is never written before its submit response —
//! the client always learns the id first:
//!
//! ```text
//! → {"op":"submit","label":"cuccaro/eqm","strategy":"eqm","topology":"grid:8","qasm":"OPENQASM 2.0;..."}
//! ← {"ok":true,"op":"submit","job":1,"status":"queued"}
//! → {"op":"poll","job":1}
//! ← {"ok":true,"op":"poll","job":1,"status":"running"}
//! ← {"event":"done","job":1,"label":"cuccaro/eqm","strategy":"eqm","result_fp":"91b2…",
//!    "metrics":{"gate_eps":0.97,…},"logical_gates":120,"pairs":2}
//! → {"op":"cancel","job":2}
//! ← {"ok":true,"op":"cancel","job":2,"cancelled":true}
//! → {"op":"stats"}
//! ← {"ok":true,"op":"stats","submitted":3,…,"cache":{"hits":1,…,"hit_rate":0.33}}
//! ```
//!
//! Failures are responses with `"ok":false` and an `"error"` string; the
//! connection stays usable. `result_fp` is the 64-bit FNV fingerprint of
//! the full `Debug` rendering of the [`CompilationResult`] — two results
//! share a fingerprint iff they are byte-identical — sent as a hex string
//! because JSON numbers cannot carry 64 bits exactly.

use crate::json::{escape, Json};
use qompress::{CompilationResult, JobStatus, Strategy, ALL_STRATEGIES};
use qompress_arch::{Fingerprinter, Topology};

/// Requests understood by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one compilation job.
    Submit {
        /// Free-form label echoed into the completion event.
        label: String,
        /// Strategy name (see [`strategy_by_name`]).
        strategy: Strategy,
        /// Topology spec, parsed server-side by [`parse_topology_spec`]
        /// (kept as the raw string so the request round-trips the wire
        /// losslessly).
        topology: String,
        /// OpenQASM 2.0 source of the circuit.
        qasm: String,
    },
    /// Submit one parametric skeleton with many angle bindings: the
    /// server compiles the structure once and stamps each binding,
    /// streaming one completion event per binding through the normal job
    /// plumbing.
    SubmitSweep {
        /// Free-form label; binding `i`'s job is labeled `label#i`.
        label: String,
        /// Strategy name (see [`strategy_by_name`]).
        strategy: Strategy,
        /// Topology spec (see [`parse_topology_spec`]).
        topology: String,
        /// OpenQASM 2.0 source of the *parametric* circuit — rotations
        /// may carry `theta<N>` formal parameters.
        qasm: String,
        /// One angle vector per binding; every angle must be finite and
        /// every vector as long as the skeleton's parameter count.
        bindings: Vec<Vec<f64>>,
    },
    /// Upload a custom topology as an explicit edge list, registering it
    /// under `name` for this connection. Subsequent submits on the same
    /// connection may pass `name` as their topology spec (uploaded names
    /// shadow the built-in `kind:size` constructors). The server
    /// validates the edge list — endpoints in range, no self-loops, node
    /// count within its configured limits — before building anything.
    Topology {
        /// Registry name (non-empty, at most 128 bytes).
        name: String,
        /// Number of nodes; edges index `0..nodes`.
        nodes: usize,
        /// Undirected coupling edges (duplicates are collapsed).
        edges: Vec<(usize, usize)>,
    },
    /// Query one job's lifecycle status.
    Poll {
        /// The id returned by the submit response.
        job: u64,
    },
    /// Cancel one still-queued job.
    Cancel {
        /// The id returned by the submit response.
        job: u64,
    },
    /// Snapshot service metrics and cache stats.
    Stats,
    /// Stop claiming queued jobs (session-wide; for drains and tests).
    Pause,
    /// Resume claiming after a pause.
    Resume,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = Json::parse(line)?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs a string `op` field".to_string())?;
        let job_id = |value: &Json| -> Result<u64, String> {
            value
                .get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{op}` needs an integer `job` field"))
        };
        match op {
            "submit" => {
                let field = |name: &str| -> Result<String, String> {
                    value
                        .get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("`submit` needs a string `{name}` field"))
                };
                Ok(Request::Submit {
                    label: field("label")?,
                    strategy: strategy_by_name(&field("strategy")?)?,
                    topology: field("topology")?,
                    qasm: field("qasm")?,
                })
            }
            "submit_sweep" => {
                let field = |name: &str| -> Result<String, String> {
                    value
                        .get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("`submit_sweep` needs a string `{name}` field"))
                };
                let rows = match value.get("bindings") {
                    Some(Json::Arr(rows)) => rows,
                    _ => return Err("`submit_sweep` needs a `bindings` array".to_string()),
                };
                let mut bindings = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let Json::Arr(items) = row else {
                        return Err(format!("`bindings[{i}]` must be an array of numbers"));
                    };
                    let mut angles = Vec::with_capacity(items.len());
                    for item in items {
                        let angle = item
                            .as_f64()
                            .ok_or_else(|| format!("`bindings[{i}]` must contain numbers"))?;
                        if !angle.is_finite() {
                            return Err(format!(
                                "`bindings[{i}]` contains the non-finite angle {angle}"
                            ));
                        }
                        angles.push(angle);
                    }
                    bindings.push(angles);
                }
                Ok(Request::SubmitSweep {
                    label: field("label")?,
                    strategy: strategy_by_name(&field("strategy")?)?,
                    topology: field("topology")?,
                    qasm: field("qasm")?,
                    bindings,
                })
            }
            "topology" => {
                let name = value
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "`topology` needs a string `name` field".to_string())?
                    .to_string();
                let nodes = value
                    .get("nodes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "`topology` needs an integer `nodes` field".to_string())?;
                let nodes = usize::try_from(nodes)
                    .map_err(|_| format!("`topology` node count {nodes} does not fit"))?;
                let rows = match value.get("edges") {
                    Some(Json::Arr(rows)) => rows,
                    _ => return Err("`topology` needs an `edges` array".to_string()),
                };
                let mut edges = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let pair = match row {
                        Json::Arr(pair) if pair.len() == 2 => pair,
                        _ => {
                            return Err(format!(
                                "`edges[{i}]` must be a two-element array of node indices"
                            ))
                        }
                    };
                    let endpoint = |v: &Json| -> Result<usize, String> {
                        v.as_u64()
                            .and_then(|n| usize::try_from(n).ok())
                            .ok_or_else(|| format!("`edges[{i}]` must contain node indices"))
                    };
                    edges.push((endpoint(&pair[0])?, endpoint(&pair[1])?));
                }
                Ok(Request::Topology { name, nodes, edges })
            }
            "poll" => Ok(Request::Poll {
                job: job_id(&value)?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: job_id(&value)?,
            }),
            "stats" => Ok(Request::Stats),
            "pause" => Ok(Request::Pause),
            "resume" => Ok(Request::Resume),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Serializes the request to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit {
                label,
                strategy,
                topology,
                qasm,
            } => format!(
                "{{\"op\":\"submit\",\"label\":\"{}\",\"strategy\":\"{}\",\
                 \"topology\":\"{}\",\"qasm\":\"{}\"}}",
                escape(label),
                strategy.name(),
                escape(topology),
                escape(qasm)
            ),
            Request::SubmitSweep {
                label,
                strategy,
                topology,
                qasm,
                bindings,
            } => {
                // Serialize bindings through `Json` so angles round-trip
                // the wire exactly (shortest-round-trip float format).
                let bindings = Json::Arr(
                    bindings
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|&a| Json::Num(a)).collect()))
                        .collect(),
                );
                format!(
                    "{{\"op\":\"submit_sweep\",\"label\":\"{}\",\"strategy\":\"{}\",\
                     \"topology\":\"{}\",\"qasm\":\"{}\",\"bindings\":{}}}",
                    escape(label),
                    strategy.name(),
                    escape(topology),
                    escape(qasm),
                    bindings
                )
            }
            Request::Topology { name, nodes, edges } => {
                let edges = edges
                    .iter()
                    .map(|&(a, b)| format!("[{a},{b}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"op\":\"topology\",\"name\":\"{}\",\"nodes\":{nodes},\
                     \"edges\":[{edges}]}}",
                    escape(name)
                )
            }
            Request::Poll { job } => format!("{{\"op\":\"poll\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"op\":\"cancel\",\"job\":{job}}}"),
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Pause => "{\"op\":\"pause\"}".to_string(),
            Request::Resume => "{\"op\":\"resume\"}".to_string(),
        }
    }
}

/// Looks a [`Strategy`] up by its wire name — every member of
/// [`ALL_STRATEGIES`] plus the unordered exhaustive variant.
pub fn strategy_by_name(name: &str) -> Result<Strategy, String> {
    ALL_STRATEGIES
        .into_iter()
        .chain([Strategy::Exhaustive { ordered: false }])
        .find(|s| s.name() == name)
        .ok_or_else(|| format!("unknown strategy `{name}`"))
}

/// Default upper bound on the size a topology spec may request. Qompress
/// compilation is superlinear in device size (the distance oracle alone
/// is O(V²) per touched source), so `line:100000000` from a hostile
/// client would build a ~10⁸-unit device server-side before any job
/// runs. 4096 covers every device the serving stack realistically
/// quotes; [`parse_topology_spec_bounded`] takes an explicit bound.
pub const DEFAULT_MAX_TOPOLOGY_NODES: usize = 4096;

/// Parses a topology spec string: `line:N`, `grid:N`, `ring:N` (N = the
/// qubit count the constructor takes), `heavyhex:D` (D = the heavy-hex
/// code distance, odd ≥ 3 — `heavyhex:5` is the 65-unit device,
/// `heavyhex:21` the 1121-unit utility-scale one) or `heavy_hex_65`,
/// with the requested size clamped to [`DEFAULT_MAX_TOPOLOGY_NODES`].
pub fn parse_topology_spec(spec: &str) -> Result<Topology, String> {
    parse_topology_spec_bounded(spec, DEFAULT_MAX_TOPOLOGY_NODES)
}

/// [`parse_topology_spec`] with an explicit upper bound on the requested
/// size — the wire server parses untrusted specs through this with its
/// configured [`crate::ServiceLimits::max_topology_nodes`].
///
/// The bound applies to the size the spec *requests*; `grid:N` rounds N
/// up to the next square, so the constructed device may carry slightly
/// more nodes than the bound (at most one extra row).
pub fn parse_topology_spec_bounded(spec: &str, max_nodes: usize) -> Result<Topology, String> {
    if spec == "heavy_hex_65" {
        if 65 > max_nodes {
            return Err(format!(
                "topology `heavy_hex_65` has 65 nodes, exceeding the limit of {max_nodes}"
            ));
        }
        return Ok(Topology::heavy_hex_65());
    }
    let (kind, size) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad topology spec `{spec}` (want `kind:size`)"))?;
    let size: usize = size
        .parse()
        .map_err(|_| format!("bad topology size in `{spec}`"))?;
    if size == 0 {
        return Err(format!("topology size must be positive in `{spec}`"));
    }
    // Rejected before any constructor runs: the whole point is that an
    // oversized spec costs the server a string compare, not O(V²) work.
    if size > max_nodes {
        return Err(format!(
            "topology size {size} in `{spec}` exceeds the limit of {max_nodes}"
        ));
    }
    match kind {
        "line" => Ok(Topology::line(size)),
        "grid" => Ok(Topology::grid(size)),
        // `Topology::ring` asserts n ≥ 3; an untrusted spec must turn
        // that into an error, not a panicked connection thread.
        "ring" if size < 3 => Err(format!("ring topology needs at least 3 nodes in `{spec}`")),
        "ring" => Ok(Topology::ring(size)),
        // `heavyhex:<d>` takes the code *distance*, not the node count;
        // the node count ((5d²+2d−5)/2 — `heavyhex:21` is 1121 units) is
        // what the limit governs, computed before construction so an
        // oversized spec never pays O(V) work. The constructor asserts
        // d odd ≥ 3; turn both into errors here.
        "heavyhex" if size < 3 || size.is_multiple_of(2) => Err(format!(
            "heavy-hex distance must be odd and >= 3 in `{spec}`"
        )),
        "heavyhex" => {
            let nodes = Topology::heavy_hex_nodes(size);
            if nodes > max_nodes {
                return Err(format!(
                    "topology `{spec}` has {nodes} nodes, exceeding the limit of {max_nodes}"
                ));
            }
            Ok(Topology::heavy_hex(size))
        }
        other => Err(format!("unknown topology kind `{other}`")),
    }
}

/// Stable 64-bit fingerprint of a full compilation result: the FNV-1a
/// hash of its `Debug` rendering, which covers every observable field
/// (schedule, metrics, placements, pairs, trace). Two results fingerprint
/// equal iff their renderings are byte-identical — the wire protocol's
/// proxy for "the streamed result is the same compilation".
pub fn result_fingerprint(result: &CompilationResult) -> u64 {
    let mut h = Fingerprinter::new();
    h.write_str(&format!("{result:?}"));
    h.finish()
}

/// Per-job summary metrics carried by a `done` event.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMetrics {
    /// Product of gate fidelities.
    pub gate_eps: f64,
    /// Coherence-limited EPS component.
    pub coherence_eps: f64,
    /// `gate_eps × coherence_eps`.
    pub total_eps: f64,
    /// Scheduled duration in nanoseconds.
    pub duration_ns: f64,
    /// Total physical operations emitted.
    pub physical_ops: u64,
    /// Inserted communication operations.
    pub communication_ops: u64,
    /// Logical gates in the input circuit.
    pub logical_gates: u64,
    /// Compressed pairs committed by the strategy.
    pub pairs: u64,
}

impl WireMetrics {
    /// Extracts the wire summary from a full result.
    pub fn of(result: &CompilationResult) -> WireMetrics {
        WireMetrics {
            gate_eps: result.metrics.gate_eps,
            coherence_eps: result.metrics.coherence_eps,
            total_eps: result.metrics.total_eps,
            duration_ns: result.metrics.duration_ns,
            physical_ops: result.metrics.total_ops() as u64,
            communication_ops: result.metrics.communication_ops as u64,
            logical_gates: result.logical_gates as u64,
            pairs: result.pairs.len() as u64,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"gate_eps\":{:?},\"coherence_eps\":{:?},\"total_eps\":{:?},\
             \"duration_ns\":{:?},\"physical_ops\":{},\"communication_ops\":{},\
             \"logical_gates\":{},\"pairs\":{}}}",
            self.gate_eps,
            self.coherence_eps,
            self.total_eps,
            self.duration_ns,
            self.physical_ops,
            self.communication_ops,
            self.logical_gates,
            self.pairs
        )
    }

    fn from_json(value: &Json) -> Result<WireMetrics, String> {
        let f = |name: &str| -> Result<f64, String> {
            value
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metrics missing `{name}`"))
        };
        let u = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics missing `{name}`"))
        };
        Ok(WireMetrics {
            gate_eps: f("gate_eps")?,
            coherence_eps: f("coherence_eps")?,
            total_eps: f("total_eps")?,
            duration_ns: f("duration_ns")?,
            physical_ops: u("physical_ops")?,
            communication_ops: u("communication_ops")?,
            logical_gates: u("logical_gates")?,
            pairs: u("pairs")?,
        })
    }
}

/// One asynchronous server→client event: a job reached a terminal state.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// The job compiled successfully.
    Done {
        /// The job's id.
        job: u64,
        /// Label echoed from the submit request.
        label: String,
        /// Realized strategy name.
        strategy: String,
        /// [`result_fingerprint`] of the full result.
        result_fp: u64,
        /// Summary metrics.
        metrics: WireMetrics,
    },
    /// The job was cancelled while queued.
    Cancelled {
        /// The job's id.
        job: u64,
        /// Label echoed from the submit request.
        label: String,
    },
    /// The job's compilation panicked.
    Failed {
        /// The job's id.
        job: u64,
        /// Label echoed from the submit request.
        label: String,
        /// The panic message.
        error: String,
    },
}

impl ServiceEvent {
    /// The job id the event is about.
    pub fn job(&self) -> u64 {
        match self {
            ServiceEvent::Done { job, .. }
            | ServiceEvent::Cancelled { job, .. }
            | ServiceEvent::Failed { job, .. } => *job,
        }
    }

    /// The terminal status the event reports.
    pub fn status(&self) -> JobStatus {
        match self {
            ServiceEvent::Done { .. } => JobStatus::Done,
            ServiceEvent::Cancelled { .. } => JobStatus::Cancelled,
            ServiceEvent::Failed { .. } => JobStatus::Failed,
        }
    }

    /// Serializes the event to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            ServiceEvent::Done {
                job,
                label,
                strategy,
                result_fp,
                metrics,
            } => format!(
                "{{\"event\":\"done\",\"job\":{job},\"label\":\"{}\",\
                 \"strategy\":\"{}\",\"result_fp\":\"{result_fp:016x}\",\
                 \"metrics\":{}}}",
                escape(label),
                escape(strategy),
                metrics.to_json()
            ),
            ServiceEvent::Cancelled { job, label } => format!(
                "{{\"event\":\"cancelled\",\"job\":{job},\"label\":\"{}\"}}",
                escape(label)
            ),
            ServiceEvent::Failed { job, label, error } => format!(
                "{{\"event\":\"failed\",\"job\":{job},\"label\":\"{}\",\"error\":\"{}\"}}",
                escape(label),
                escape(error)
            ),
        }
    }

    /// Parses an event line; `Ok(None)` when the line is not an event
    /// (e.g. a response).
    pub fn parse(value: &Json) -> Result<Option<ServiceEvent>, String> {
        let Some(kind) = value.get("event").and_then(Json::as_str) else {
            return Ok(None);
        };
        let job = value
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| "event missing `job`".to_string())?;
        let label = value
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        match kind {
            "done" => {
                let fp_text = value
                    .get("result_fp")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "done event missing `result_fp`".to_string())?;
                let result_fp = u64::from_str_radix(fp_text, 16)
                    .map_err(|_| format!("bad result_fp `{fp_text}`"))?;
                let metrics = WireMetrics::from_json(
                    value
                        .get("metrics")
                        .ok_or_else(|| "done event missing `metrics`".to_string())?,
                )?;
                Ok(Some(ServiceEvent::Done {
                    job,
                    label,
                    strategy: value
                        .get("strategy")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    result_fp,
                    metrics,
                }))
            }
            "cancelled" => Ok(Some(ServiceEvent::Cancelled { job, label })),
            "failed" => Ok(Some(ServiceEvent::Failed {
                job,
                label,
                error: value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            })),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_resolve_by_wire_name() {
        for strategy in ALL_STRATEGIES {
            assert_eq!(strategy_by_name(strategy.name()).unwrap(), strategy);
        }
        assert_eq!(
            strategy_by_name("ec-unordered").unwrap(),
            Strategy::Exhaustive { ordered: false }
        );
        assert!(strategy_by_name("bogus").is_err());
    }

    #[test]
    fn topology_specs_build_the_constructors() {
        assert_eq!(parse_topology_spec("line:5").unwrap(), Topology::line(5));
        assert_eq!(parse_topology_spec("grid:9").unwrap(), Topology::grid(9));
        assert_eq!(parse_topology_spec("ring:12").unwrap(), Topology::ring(12));
        assert_eq!(
            parse_topology_spec("heavy_hex_65").unwrap(),
            Topology::heavy_hex_65()
        );
        for bad in ["grid", "grid:", "grid:x", "grid:0", "torus:4", "", "ring:2"] {
            assert!(parse_topology_spec(bad).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn heavyhex_spec_takes_the_distance() {
        assert_eq!(
            parse_topology_spec("heavyhex:5").unwrap(),
            Topology::heavy_hex_65()
        );
        assert_eq!(parse_topology_spec("heavyhex:7").unwrap().n_nodes(), 127);
        assert_eq!(parse_topology_spec("heavyhex:21").unwrap().n_nodes(), 1121);
        // Invalid distances answer errors, never a panicked connection.
        for bad in [
            "heavyhex:0",
            "heavyhex:1",
            "heavyhex:2",
            "heavyhex:4",
            "heavyhex:x",
        ] {
            assert!(parse_topology_spec(bad).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn heavyhex_spec_limit_governs_node_count_not_distance() {
        // d = 41 → 4241 nodes > 4096: rejected by node count even though
        // the raw distance is tiny — and before any construction runs.
        assert_eq!(Topology::heavy_hex_nodes(41), 4241);
        let err = parse_topology_spec("heavyhex:41").unwrap_err();
        assert!(err.contains("4241") && err.contains("limit"), "{err}");
        // d = 39 → 3839 nodes fits the default bound.
        assert_eq!(parse_topology_spec("heavyhex:39").unwrap().n_nodes(), 3839);
        // Explicit tighter bounds bite the same way.
        assert!(parse_topology_spec_bounded("heavyhex:5", 65).is_ok());
        assert!(parse_topology_spec_bounded("heavyhex:5", 64).is_err());
    }

    #[test]
    fn topology_size_clamped_at_the_boundary() {
        // Exactly at the default bound builds; one past errors — and the
        // hostile shape (`line:100000000`) must cost a comparison, not a
        // hundred-million-node construction.
        let max = DEFAULT_MAX_TOPOLOGY_NODES;
        assert_eq!(
            parse_topology_spec(&format!("line:{max}"))
                .unwrap()
                .n_nodes(),
            max
        );
        let err = parse_topology_spec(&format!("line:{}", max + 1)).unwrap_err();
        assert!(err.contains("exceeds the limit"), "{err}");
        let err = parse_topology_spec("line:100000000").unwrap_err();
        assert!(err.contains("exceeds the limit"), "{err}");
        // Explicit bounds apply to every kind, including the named one.
        assert!(parse_topology_spec_bounded("grid:9", 9).is_ok());
        assert!(parse_topology_spec_bounded("grid:10", 9).is_err());
        assert!(parse_topology_spec_bounded("heavy_hex_65", 65).is_ok());
        assert!(parse_topology_spec_bounded("heavy_hex_65", 64).is_err());
    }

    #[test]
    fn requests_round_trip_the_wire() {
        let requests = [
            Request::Submit {
                label: "a/b \"quoted\"".to_string(),
                strategy: Strategy::Eqm,
                topology: "grid:4".to_string(),
                qasm: "OPENQASM 2.0;\nqreg q[2];\nh q;\n".to_string(),
            },
            Request::SubmitSweep {
                label: "sweep/vqe".to_string(),
                strategy: Strategy::FullQuquart,
                topology: "line:6".to_string(),
                qasm: "OPENQASM 2.0;\nqreg q[2];\nrz(theta0) q[0];\n".to_string(),
                bindings: vec![vec![0.5, -1.25], vec![3.0, 0.0078125], vec![]],
            },
            Request::Topology {
                name: "lab-device".to_string(),
                nodes: 5,
                edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
            },
            Request::Poll { job: 3 },
            Request::Cancel { job: 9 },
            Request::Stats,
            Request::Pause,
            Request::Resume,
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "not json",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"poll"}"#,
            r#"{"op":"poll","job":"three"}"#,
            r#"{"op":"submit","label":"x"}"#,
            r#"{"op":"submit","label":"x","strategy":"nope","topology":"grid:4","qasm":""}"#,
            // submit_sweep: bindings must be a present array of arrays of
            // finite numbers.
            r#"{"op":"submit_sweep","label":"x","strategy":"eqm","topology":"grid:4","qasm":""}"#,
            r#"{"op":"submit_sweep","label":"x","strategy":"eqm","topology":"grid:4","qasm":"","bindings":7}"#,
            r#"{"op":"submit_sweep","label":"x","strategy":"eqm","topology":"grid:4","qasm":"","bindings":[7]}"#,
            r#"{"op":"submit_sweep","label":"x","strategy":"eqm","topology":"grid:4","qasm":"","bindings":[["x"]]}"#,
            r#"{"op":"submit_sweep","label":"x","strategy":"eqm","topology":"grid:4","qasm":"","bindings":[[1e999]]}"#,
            // topology uploads: name/nodes/edges are structurally
            // validated at parse time (semantic limits are the server's).
            r#"{"op":"topology","nodes":3,"edges":[]}"#,
            r#"{"op":"topology","name":"t","edges":[]}"#,
            r#"{"op":"topology","name":"t","nodes":3}"#,
            r#"{"op":"topology","name":"t","nodes":3,"edges":[[0]]}"#,
            r#"{"op":"topology","name":"t","nodes":3,"edges":[[0,1,2]]}"#,
            r#"{"op":"topology","name":"t","nodes":3,"edges":[["a","b"]]}"#,
            r#"{"op":"topology","name":"t","nodes":-1,"edges":[]}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "`{bad}`");
        }
        // Topology specs are validated when the job is built, not at
        // request parse time (the raw spec round-trips the wire).
        assert!(Request::parse(
            r#"{"op":"submit","label":"x","strategy":"eqm","topology":"blob","qasm":""}"#
        )
        .is_ok());
    }

    #[test]
    fn events_round_trip_the_wire() {
        let events = [
            ServiceEvent::Done {
                job: 7,
                label: "cuccaro/grid:8/eqm".to_string(),
                strategy: "eqm".to_string(),
                result_fp: 0xdead_beef_0102_0304,
                metrics: WireMetrics {
                    gate_eps: 0.971234,
                    coherence_eps: 0.75,
                    total_eps: 0.72842550,
                    duration_ns: 48000.0,
                    physical_ops: 412,
                    communication_ops: 33,
                    logical_gates: 120,
                    pairs: 2,
                },
            },
            ServiceEvent::Cancelled {
                job: 8,
                label: "late".to_string(),
            },
            ServiceEvent::Failed {
                job: 9,
                label: "boom".to_string(),
                error: "architecture offers only 2 slots".to_string(),
            },
        ];
        for event in events {
            let line = event.to_line();
            let value = Json::parse(&line).unwrap();
            let parsed = ServiceEvent::parse(&value).unwrap().unwrap();
            assert_eq!(parsed, event, "{line}");
        }
        // Responses are not events.
        let value = Json::parse(r#"{"ok":true,"op":"stats"}"#).unwrap();
        assert_eq!(ServiceEvent::parse(&value).unwrap(), None);
    }

    #[test]
    fn result_fingerprint_separates_results() {
        use qompress::{Compiler, Strategy};
        use qompress_circuit::{Circuit, Gate};
        let mut c = Circuit::new(4);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        let session = Compiler::builder().caching(false).build();
        let topo = parse_topology_spec("grid:4").unwrap();
        let a = session.compile(&c, &topo, Strategy::Eqm);
        let b = session.compile(&c, &topo, Strategy::Eqm);
        assert_eq!(result_fingerprint(&a), result_fingerprint(&b));
        let other = session.compile(&c, &topo, Strategy::QubitOnly);
        assert_ne!(result_fingerprint(&a), result_fingerprint(&other));
    }
}
