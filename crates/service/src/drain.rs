//! Graceful-drain signalling for the socket servers.
//!
//! A [`DrainHandle`] is a shared flag connecting whoever decides to shut
//! down (a signal handler, a test, an operator thread) to the accept
//! loops and connection handlers that must wind work down:
//!
//! * the draining listener variants ([`crate::serve_tcp_draining`],
//!   [`crate::serve_unix_draining`]) stop accepting connections and
//!   return once the flag trips;
//! * connections already being served answer new `submit` /
//!   `submit_sweep` requests with a structured
//!   `{"ok":false,"draining":true,…}` rejection (surfaced client-side as
//!   [`crate::ServiceError::Draining`]) while every other op — `poll`,
//!   `stats`, `cancel`, event streaming — keeps working, so in-flight
//!   jobs finish and their completions still reach their clients.
//!
//! The flag is one-way: once tripped, a server never resumes accepting.
//! Process exit (waiting out in-flight jobs up to a deadline, flushing
//! write-backs) is the binary's job — see `qompress-serve`'s
//! `--drain-timeout`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable drain flag (see the module docs). All clones
/// observe one trip.
#[derive(Debug, Clone, Default)]
pub struct DrainHandle {
    inner: Arc<AtomicBool>,
}

impl DrainHandle {
    /// A fresh, untripped handle.
    pub fn new() -> Self {
        DrainHandle::default()
    }

    /// Trips the flag: accept loops stop, submits start answering
    /// `draining`. Idempotent.
    pub fn trigger(&self) {
        self.inner.store(true, Ordering::Release);
    }

    /// Whether the flag has tripped.
    pub fn is_draining(&self) -> bool {
        self.inner.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_once_for_every_clone() {
        let handle = DrainHandle::new();
        let clone = handle.clone();
        assert!(!handle.is_draining());
        assert!(!clone.is_draining());
        clone.trigger();
        assert!(handle.is_draining());
        clone.trigger(); // idempotent
        assert!(handle.is_draining());
        // A fresh handle is its own flag.
        assert!(!DrainHandle::new().is_draining());
    }
}
