//! Admission limits and backpressure configuration for the wire server.
//!
//! The wire protocol serves untrusted callers, and Qompress-style
//! compilation is superlinear in device size — one hostile request
//! naming a huge topology or qreg is a denial of service. Every knob an
//! operator needs to keep a shared session survivable lives in
//! [`ServiceLimits`]: request-shape bounds (circuit qubits/gates,
//! topology size, sweep width), per-connection quotas (outstanding and
//! lifetime job counts, uploaded topologies), queue-depth backpressure,
//! and the idle-connection timeout. `qompress-serve` exposes each as a
//! flag; the `serve_*_with_limits` entry points thread one config into
//! every connection.
//!
//! Violations are **structured responses, not disconnects**: a request
//! past a shape bound or quota answers `{"ok":false,…}` with a `quota`
//! tag where applicable, a submit against a full queue answers
//! `{"ok":false,"busy":true,"queue_depth":N,…}` so clients can back
//! off, and the connection stays usable either way. Only the idle
//! timeout ends a connection — with a final
//! `{"ok":false,"timeout":true,…}` line so the client knows why.

use std::time::Duration;

/// Deployment-level default for the persistent cache's disk quota
/// (`qompress-serve --cache-disk-bytes`): 1 GiB, matching the store
/// crate's own default. Lives here with the other service-tuning
/// constants so an operator reads one module to size a deployment; the
/// disk quota is a session-builder knob rather than a per-connection
/// [`ServiceLimits`] field because the store is shared by every
/// connection (and every process) pointing at the directory.
pub const DEFAULT_DISK_CACHE_BYTES: u64 = 1 << 30;

/// Per-connection admission limits for the wire server.
///
/// [`ServiceLimits::default`] is deliberately generous — large enough
/// that no legitimate workload in this repository ever trips a bound,
/// small enough that the superlinear compilation costs stay sane.
/// Operators facing hostile traffic should tighten per deployment via
/// the `qompress-serve` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceLimits {
    /// Largest total qubit count a submitted circuit (or sweep skeleton)
    /// may declare; enforced inside the QASM parser before any circuit
    /// storage is sized. Default 256.
    pub max_circuit_qubits: usize,
    /// Largest gate count a submitted circuit (or sweep skeleton) may
    /// carry after parsing. Default 100 000.
    pub max_circuit_gates: usize,
    /// Largest size a topology spec or upload may request. Default 4096
    /// (= [`crate::proto::DEFAULT_MAX_TOPOLOGY_NODES`]).
    pub max_topology_nodes: usize,
    /// Most jobs one connection may have outstanding (submitted but not
    /// yet streamed a terminal event) at once. Default 256.
    pub max_concurrent_jobs: usize,
    /// Most jobs one connection may submit over its lifetime. Default
    /// 1 000 000.
    pub max_total_jobs: u64,
    /// Most angle bindings one `submit_sweep` may carry. Default 4096.
    pub max_sweep_bindings: usize,
    /// Most named topologies one connection may hold uploaded at once
    /// (re-uploading an existing name replaces it for free). Default 16.
    pub max_uploaded_topologies: usize,
    /// Queue-depth backpressure bound: a submit is answered `busy` when
    /// the session queue would exceed this many unclaimed jobs. Default
    /// 10 000.
    pub max_queue_depth: usize,
    /// Close a connection after this long without a complete request
    /// line. `None` (the default) disables the timeout — callers owning
    /// the transport, like tests over the loopback, rarely want one;
    /// `qompress-serve` defaults its sockets to 300 s.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        ServiceLimits {
            max_circuit_qubits: 256,
            max_circuit_gates: 100_000,
            max_topology_nodes: crate::proto::DEFAULT_MAX_TOPOLOGY_NODES,
            max_concurrent_jobs: 256,
            max_total_jobs: 1_000_000,
            max_sweep_bindings: 4096,
            max_uploaded_topologies: 16,
            max_queue_depth: 10_000,
            idle_timeout: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safely_ordered() {
        let limits = ServiceLimits::default();
        // The wire-level qubit cap must be tighter than the parser-level
        // default, or the service bound would never bite.
        assert!(limits.max_circuit_qubits < qompress_qasm::DEFAULT_MAX_QUBITS);
        assert_eq!(
            limits.max_topology_nodes,
            crate::proto::DEFAULT_MAX_TOPOLOGY_NODES
        );
        // A full concurrent quota must fit in the queue bound, so a
        // single well-behaved connection can never trip backpressure.
        assert!(limits.max_concurrent_jobs <= limits.max_queue_depth);
        assert!(limits.idle_timeout.is_none());
    }
}
