//! The wire-protocol server: one reader loop + one completion pump per
//! connection, multiplexed onto a shared [`Compiler`] session.
//!
//! [`serve_duplex`] drives one connection over any `(Read, Write)` pair —
//! a TCP stream, a Unix socket, or the in-memory [`crate::loopback`]
//! transport. [`serve_tcp`] and [`serve_unix`] accept connections in a
//! loop and spawn one `serve_duplex` thread each; every connection shares
//! the session's worker pool, topology registry and result cache, so a
//! circuit submitted twice — by the same client or two different ones —
//! compiles once.

use crate::proto::{parse_topology_spec, result_fingerprint, Request, ServiceEvent, WireMetrics};
use qompress::{BatchJob, Compiler, CompletionQueue, JobHandle, JobOutcome, JobStatus, ParamSweep};
use qompress_qasm::{parse_parametric_qasm, parse_qasm};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

/// Upper bound on one request line. Generous for line-delimited JSON
/// (a multi-megabyte QASM program fits many times over) while keeping a
/// hostile no-newline byte stream from growing a connection buffer
/// without limit.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// One tracked job of a connection. `Active` holds the live handle; once
/// the pump has streamed the terminal event, the entry collapses to
/// `Finished(status)` so the handle — and with it the job's retained
/// `Arc<CompilationResult>` — is dropped. A long-lived connection
/// streaming an unbounded sweep therefore holds O(outstanding) results,
/// not O(submitted): `poll` keeps answering from the slim record.
#[derive(Debug)]
enum ConnJob {
    Active(JobHandle),
    Finished(JobStatus),
}

/// Serves one client connection until EOF, blocking the calling thread.
///
/// Requests are answered in order on `writer`; completion events for
/// every job submitted on *this* connection are interleaved as the jobs
/// finish (a dedicated pump thread waits on the connection's
/// [`CompletionQueue`]). When the client disconnects, still-running jobs
/// keep the session's caches warm but their events go nowhere.
///
/// The caller constructed the transport, so this single connection is
/// trusted with the session-wide admin ops (`pause`/`resume`); the
/// shared listeners ([`serve_tcp`]/[`serve_unix`]) disable those per
/// connection.
///
/// # Errors
///
/// Returns the first transport-level I/O error; protocol-level problems
/// (malformed JSON, unknown ops, bad QASM) are reported to the client as
/// `{"ok":false,…}` responses and do not end the connection.
pub fn serve_duplex<R, W>(session: Arc<Compiler>, reader: R, writer: W) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
{
    serve_conn(session, reader, writer, true)
}

/// [`serve_duplex`] with an explicit admin switch: when `admin` is false,
/// the session-wide `pause`/`resume` ops answer `{"ok":false,…}` instead
/// of acting. Shared listeners ([`serve_tcp`]/[`serve_unix`]) run every
/// connection with `admin = false`, so no single remote client can stall
/// every other client's jobs; the single-connection [`serve_duplex`]
/// (whose transport the caller constructed and controls) allows them.
fn serve_conn<R, W>(session: Arc<Compiler>, reader: R, writer: W, admin: bool) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
{
    let writer = Arc::new(Mutex::new(writer));
    let handles: Arc<Mutex<HashMap<u64, ConnJob>>> = Arc::new(Mutex::new(HashMap::new()));
    let completions = CompletionQueue::new();

    let pump = {
        let writer = Arc::clone(&writer);
        let handles = Arc::clone(&handles);
        let completions = completions.clone();
        std::thread::Builder::new()
            .name("qompress-service-pump".to_string())
            .spawn(move || pump_loop(&writer, &handles, &completions))
            .expect("spawn completion pump")
    };

    let mut result = Ok(());
    let mut reader = BufReader::new(reader);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        // Bounded line read: a client streaming bytes with no `\n` (or an
        // absurdly long line) must not grow this buffer without limit and
        // OOM a shared server. Oversized lines end the connection with an
        // error line — resynchronizing mid-line is not worth trusting.
        buf.clear();
        let n = match (&mut reader)
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(n) => n,
            Err(err) => {
                result = Err(err);
                break;
            }
        };
        if n == 0 {
            break; // clean EOF
        }
        if buf.len() > MAX_LINE_BYTES {
            let mut w = writer.lock().expect("service writer poisoned");
            let _ = writeln!(
                w,
                "{}",
                error_line(&format!("request line exceeds {MAX_LINE_BYTES} bytes"))
            );
            let _ = w.flush();
            break;
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Take the writer lock *before* handling the request: a submit's
        // job can finish (e.g. a cache hit) before this thread writes the
        // response, and the pump must not slip that job's event onto the
        // wire first — a client should never see an event for a job id it
        // has not been told about. The pump never holds the handles lock
        // while waiting for the writer, so this ordering cannot deadlock.
        let mut w = writer.lock().expect("service writer poisoned");
        let response = handle_line(&session, &handles, &completions, line, admin);
        if let Err(err) = writeln!(w, "{response}").and_then(|()| w.flush()) {
            result = Err(err);
            break;
        }
        drop(w);
    }

    // EOF (or error): wake the pump; it drains already-buffered
    // completions and exits.
    completions.close();
    pump.join().expect("completion pump panicked");
    result
}

/// Writes one event line per completed job until the queue closes.
fn pump_loop(
    writer: &Mutex<impl Write>,
    handles: &Mutex<HashMap<u64, ConnJob>>,
    completions: &CompletionQueue,
) {
    while let Some(id) = completions.pop() {
        let handle = match handles.lock().expect("service handles poisoned").get(&id.0) {
            Some(ConnJob::Active(handle)) => handle.clone(),
            _ => continue,
        };
        let Some(outcome) = handle.poll() else {
            continue;
        };
        // The event below is this job's terminal notification: collapse
        // the tracked entry to its status so the handle (and the full
        // result it retains) is freed, bounding a long-lived
        // connection's memory by outstanding work, not total submits.
        handles
            .lock()
            .expect("service handles poisoned")
            .insert(id.0, ConnJob::Finished(outcome.status()));
        let event = match outcome {
            JobOutcome::Done(result) => ServiceEvent::Done {
                job: id.0,
                label: handle.label().to_string(),
                strategy: result.strategy.clone(),
                result_fp: result_fingerprint(&result),
                metrics: WireMetrics::of(&result),
            },
            JobOutcome::Cancelled => ServiceEvent::Cancelled {
                job: id.0,
                label: handle.label().to_string(),
            },
            JobOutcome::Failed(error) => ServiceEvent::Failed {
                job: id.0,
                label: handle.label().to_string(),
                error,
            },
        };
        let mut w = writer.lock().expect("service writer poisoned");
        if writeln!(w, "{}", event.to_line())
            .and_then(|()| w.flush())
            .is_err()
        {
            // Client gone; stop streaming (jobs keep running).
            return;
        }
    }
}

/// Handles one request line, returning the response line.
fn handle_line(
    session: &Compiler,
    handles: &Mutex<HashMap<u64, ConnJob>>,
    completions: &CompletionQueue,
    line: &str,
    admin: bool,
) -> String {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return error_line(&message),
    };
    match request {
        Request::Submit {
            label,
            strategy,
            topology,
            qasm,
        } => {
            let topology = match parse_topology_spec(&topology) {
                Ok(t) => t,
                Err(message) => return error_line(&message),
            };
            let circuit = match parse_qasm(&qasm) {
                Ok(c) => c,
                Err(err) => return error_line(&format!("{err}")),
            };
            // Hold the handles lock across submit + insert: a fast job
            // (e.g. a cache hit) can reach the completion queue before
            // this thread runs again, and the pump must find the handle
            // when it pops that id — it blocks on this same lock until
            // the insert is done.
            let mut map = handles.lock().expect("service handles poisoned");
            let handle = session.submit_watched(
                BatchJob::new(label, circuit, strategy, topology),
                completions,
            );
            let id = handle.id().0;
            let status = handle.status();
            map.insert(id, ConnJob::Active(handle));
            format!(
                "{{\"ok\":true,\"op\":\"submit\",\"job\":{id},\"status\":\"{}\"}}",
                status.name()
            )
        }
        Request::SubmitSweep {
            label,
            strategy,
            topology,
            qasm,
            bindings,
        } => {
            let topology = match parse_topology_spec(&topology) {
                Ok(t) => t,
                Err(message) => return error_line(&message),
            };
            let skeleton = match parse_parametric_qasm(&qasm) {
                Ok(s) => s,
                Err(err) => return error_line(&format!("{err}")),
            };
            // Arity is validated before anything is enqueued, so a sweep
            // is accepted or rejected atomically (angles are already
            // known finite from request parsing).
            for (i, angles) in bindings.iter().enumerate() {
                if angles.len() != skeleton.n_params() {
                    return error_line(&format!(
                        "bindings[{i}] has {} angle(s) but the skeleton has {} parameter(s)",
                        angles.len(),
                        skeleton.n_params()
                    ));
                }
            }
            let sweep = ParamSweep::new(skeleton);
            // Same lock discipline as `submit`: the pump must find every
            // handle when its completion pops.
            let mut map = handles.lock().expect("service handles poisoned");
            let ids: Vec<u64> = bindings
                .iter()
                .enumerate()
                .map(|(i, angles)| {
                    let job = sweep.job(format!("{label}#{i}"), strategy, topology.clone(), angles);
                    let handle = session.submit_watched(job, completions);
                    let id = handle.id().0;
                    map.insert(id, ConnJob::Active(handle));
                    id
                })
                .collect();
            let ids = ids.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            format!(
                "{{\"ok\":true,\"op\":\"submit_sweep\",\"jobs\":[{ids}],\"status\":\"queued\"}}"
            )
        }
        Request::Poll { job } => {
            let status = match handles.lock().expect("service handles poisoned").get(&job) {
                Some(ConnJob::Active(handle)) => handle.status(),
                Some(ConnJob::Finished(status)) => *status,
                None => return error_line(&format!("unknown job {job}")),
            };
            format!(
                "{{\"ok\":true,\"op\":\"poll\",\"job\":{job},\"status\":\"{}\"}}",
                status.name()
            )
        }
        Request::Cancel { job } => {
            let handle = match handles.lock().expect("service handles poisoned").get(&job) {
                Some(ConnJob::Active(handle)) => Some(handle.clone()),
                // Already terminal and pruned: nothing left to cancel.
                Some(ConnJob::Finished(_)) => None,
                None => return error_line(&format!("unknown job {job}")),
            };
            let cancelled = handle.map(|h| h.cancel()).unwrap_or(false);
            format!("{{\"ok\":true,\"op\":\"cancel\",\"job\":{job},\"cancelled\":{cancelled}}}")
        }
        Request::Stats => {
            let m = session.service_metrics();
            let c = session.cache_stats();
            format!(
                "{{\"ok\":true,\"op\":\"stats\",\"submitted\":{},\"queued\":{},\
                 \"running\":{},\"completed\":{},\"cancelled\":{},\"failed\":{},\
                 \"cache\":{}}}",
                m.submitted,
                m.queued,
                m.running,
                m.completed,
                m.cancelled,
                m.failed,
                c.to_json()
            )
        }
        Request::Pause => {
            if !admin {
                return error_line("`pause` is disabled on shared listeners");
            }
            session.pause_workers();
            "{\"ok\":true,\"op\":\"pause\"}".to_string()
        }
        Request::Resume => {
            if !admin {
                return error_line("`resume` is disabled on shared listeners");
            }
            session.resume_workers();
            "{\"ok\":true,\"op\":\"resume\"}".to_string()
        }
    }
}

fn error_line(message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\"}}",
        crate::json::escape(message)
    )
}

/// Accepts TCP connections forever, serving each on its own thread over
/// the shared session. Bind the listener yourself (port 0 for tests):
///
/// ```no_run
/// use std::net::TcpListener;
/// use std::sync::Arc;
/// let session = Arc::new(qompress::Compiler::builder().build());
/// let listener = TcpListener::bind("127.0.0.1:7878").unwrap();
/// qompress_service::serve_tcp(listener, session).unwrap();
/// ```
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
pub fn serve_tcp(listener: TcpListener, session: Arc<Compiler>) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let session = Arc::clone(&session);
        let reader = stream.try_clone()?;
        std::thread::Builder::new()
            .name("qompress-service-conn".to_string())
            .spawn(move || {
                let _ = serve_conn(session, reader, stream, false);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// [`serve_tcp`] over a Unix-domain socket listener.
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
#[cfg(unix)]
pub fn serve_unix(
    listener: std::os::unix::net::UnixListener,
    session: Arc<Compiler>,
) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let session = Arc::clone(&session);
        let reader = stream.try_clone()?;
        std::thread::Builder::new()
            .name("qompress-service-conn".to_string())
            .spawn(move || {
                let _ = serve_conn(session, reader, stream, false);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}
