//! The wire-protocol server: one reader loop + one completion pump per
//! connection, multiplexed onto a shared [`Compiler`] session.
//!
//! [`serve_duplex`] drives one connection over any `(Read, Write)` pair —
//! a TCP stream, a Unix socket, or the in-memory [`crate::loopback`]
//! transport. [`serve_tcp`] and [`serve_unix`] accept connections in a
//! loop and spawn one `serve_duplex` thread each; every connection shares
//! the session's worker pool, topology registry and result cache, so a
//! circuit submitted twice — by the same client or two different ones —
//! compiles once.
//!
//! Every entry point has a `*_with_limits` twin taking a
//! [`ServiceLimits`]; the plain forms serve with
//! [`ServiceLimits::default`]. Limits are enforced per connection:
//! request-shape bounds and quotas answer structured `{"ok":false,…}`
//! responses (the connection stays usable), queue-depth backpressure
//! answers `busy` responses with the current depth, and the idle timeout
//! writes a final `timeout` line before closing.

use crate::drain::DrainHandle;
use crate::json::escape;
use crate::limits::ServiceLimits;
use crate::proto::{
    parse_topology_spec_bounded, result_fingerprint, Request, ServiceEvent, WireMetrics,
};
use qompress::{BatchJob, Compiler, CompletionQueue, JobHandle, JobOutcome, JobStatus, ParamSweep};
use qompress_arch::Topology;
use qompress_qasm::{parse_parametric_qasm_bounded, parse_qasm_bounded};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bound on one request line. Generous for line-delimited JSON
/// (a multi-megabyte QASM program fits many times over) while keeping a
/// hostile no-newline byte stream from growing a connection buffer
/// without limit.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// One tracked job of a connection. `Active` holds the live handle; once
/// the pump has streamed the terminal event, the entry collapses to
/// `Finished(status)` so the handle — and with it the job's retained
/// `Arc<CompilationResult>` — is dropped. A long-lived connection
/// streaming an unbounded sweep therefore holds O(outstanding) results,
/// not O(submitted): `poll` keeps answering from the slim record.
#[derive(Debug)]
enum ConnJob {
    Active(JobHandle),
    Finished(JobStatus),
}

/// Serves one client connection until EOF, blocking the calling thread,
/// with [`ServiceLimits::default`] admission limits.
///
/// Requests are answered in order on `writer`; completion events for
/// every job submitted on *this* connection are interleaved as the jobs
/// finish (a dedicated pump thread waits on the connection's
/// [`CompletionQueue`]). When the client disconnects, still-running jobs
/// keep the session's caches warm but their events go nowhere.
///
/// The caller constructed the transport, so this single connection is
/// trusted with the session-wide admin ops (`pause`/`resume`); the
/// shared listeners ([`serve_tcp`]/[`serve_unix`]) disable those per
/// connection.
///
/// # Errors
///
/// Returns the first transport-level I/O error; protocol-level problems
/// (malformed JSON, unknown ops, bad QASM, limit violations) are
/// reported to the client as `{"ok":false,…}` responses and do not end
/// the connection. An idle timeout (a read failing with
/// [`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`]) writes
/// a final `timeout` line and ends the connection cleanly with `Ok`.
pub fn serve_duplex<R, W>(session: Arc<Compiler>, reader: R, writer: W) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
{
    serve_conn(
        session,
        reader,
        writer,
        true,
        ServiceLimits::default(),
        None,
    )
}

/// [`serve_duplex`] with explicit admission limits. The transport's own
/// read timeout is the caller's to configure (e.g.
/// [`crate::LoopbackReader::set_read_timeout`]); `limits.idle_timeout`
/// here only labels the closing `timeout` line — the socket listeners
/// apply it to their streams for you.
pub fn serve_duplex_with_limits<R, W>(
    session: Arc<Compiler>,
    reader: R,
    writer: W,
    limits: ServiceLimits,
) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
{
    serve_conn(session, reader, writer, true, limits, None)
}

/// [`serve_duplex_with_limits`] watching a [`DrainHandle`]: once the
/// handle trips, new `submit`/`submit_sweep` requests on this connection
/// answer `{"ok":false,"draining":true,…}` while every other op (and
/// the event stream for already-admitted jobs) keeps working. The
/// connection still runs to EOF — drain stops *work intake*, not
/// conversations.
pub fn serve_duplex_draining<R, W>(
    session: Arc<Compiler>,
    reader: R,
    writer: W,
    limits: ServiceLimits,
    drain: DrainHandle,
) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
{
    serve_conn(session, reader, writer, true, limits, Some(drain))
}

/// Per-connection admission state: the lifetime job count, the uploaded
/// topology registry, and a live count of jobs submitted but not yet
/// streamed a terminal event (decremented by the pump as events go out).
struct ConnState<'a> {
    session: &'a Compiler,
    limits: &'a ServiceLimits,
    outstanding: &'a AtomicUsize,
    total_jobs: u64,
    topologies: HashMap<String, Topology>,
    /// The server's drain flag; `None` on non-draining entry points.
    drain: Option<&'a DrainHandle>,
}

impl ConnState<'_> {
    /// Whether the server is draining — submits must be rejected.
    fn draining(&self) -> bool {
        self.drain.is_some_and(DrainHandle::is_draining)
    }
    /// Admission control for `n_jobs` new jobs: the lifetime quota, the
    /// outstanding-jobs quota, then queue-depth backpressure — all
    /// before any parsing or compilation work is spent on the request.
    /// The error is the full structured response line.
    fn admit(&self, n_jobs: usize) -> Result<(), String> {
        let limits = self.limits;
        if self.total_jobs.saturating_add(n_jobs as u64) > limits.max_total_jobs {
            return Err(quota_line(
                "total_jobs",
                limits.max_total_jobs,
                &format!(
                    "connection exhausted its lifetime budget of {} job(s)",
                    limits.max_total_jobs
                ),
            ));
        }
        let outstanding = self.outstanding.load(Ordering::Acquire);
        if outstanding.saturating_add(n_jobs) > limits.max_concurrent_jobs {
            return Err(quota_line(
                "concurrent_jobs",
                limits.max_concurrent_jobs as u64,
                &format!(
                    "{outstanding} job(s) outstanding at the limit of {} — wait for \
                     completion events before submitting more",
                    limits.max_concurrent_jobs
                ),
            ));
        }
        let depth = self.session.queue_depth();
        if depth.saturating_add(n_jobs) > limits.max_queue_depth {
            return Err(busy_line(depth, limits.max_queue_depth));
        }
        Ok(())
    }

    /// Records `n_jobs` admitted jobs. Call while still holding the
    /// handles lock, so the pump (which takes that lock to collapse an
    /// entry before decrementing) can never observe a negative count.
    fn note_submitted(&mut self, n_jobs: usize) {
        self.total_jobs += n_jobs as u64;
        self.outstanding.fetch_add(n_jobs, Ordering::AcqRel);
    }

    /// Resolves a submit's topology spec: this connection's uploads
    /// first (by exact name, shadowing the built-in constructors), then
    /// the bounded `kind:size` parser.
    fn resolve_topology(&self, spec: &str) -> Result<Topology, String> {
        if let Some(t) = self.topologies.get(spec) {
            return Ok(t.clone());
        }
        parse_topology_spec_bounded(spec, self.limits.max_topology_nodes)
    }

    /// Handles a `topology` upload: full validation (name shape, node
    /// count against the limit, edge endpoints in range, no self-loops)
    /// before `Topology::from_edges` — whose own checks are `assert!`s,
    /// and an untrusted edge list must answer an error line, not panic
    /// the connection thread.
    fn upload_topology(
        &mut self,
        name: String,
        nodes: usize,
        edges: Vec<(usize, usize)>,
    ) -> String {
        if name.is_empty() || name.len() > 128 {
            return error_line("topology name must be 1..=128 bytes");
        }
        if nodes == 0 {
            return error_line("topology needs at least one node");
        }
        if nodes > self.limits.max_topology_nodes {
            return error_line(&format!(
                "topology has {nodes} nodes, exceeding the limit of {}",
                self.limits.max_topology_nodes
            ));
        }
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a == b {
                return error_line(&format!("edges[{i}] is a self-loop on node {a}"));
            }
            if a >= nodes || b >= nodes {
                return error_line(&format!(
                    "edges[{i}] = [{a},{b}] is out of range for {nodes} node(s)"
                ));
            }
        }
        // Replacing an existing name is free; only new names count
        // against the registry quota.
        if !self.topologies.contains_key(&name)
            && self.topologies.len() >= self.limits.max_uploaded_topologies
        {
            return quota_line(
                "uploaded_topologies",
                self.limits.max_uploaded_topologies as u64,
                &format!(
                    "connection already holds {} uploaded topologies",
                    self.topologies.len()
                ),
            );
        }
        let topology = Topology::from_edges(name.clone(), nodes, edges);
        let response = format!(
            "{{\"ok\":true,\"op\":\"topology\",\"name\":\"{}\",\"nodes\":{nodes},\
             \"edges\":{}}}",
            escape(&name),
            topology.n_edges()
        );
        self.topologies.insert(name, topology);
        response
    }
}

/// [`serve_duplex`] with an explicit admin switch and limits: when
/// `admin` is false, the session-wide `pause`/`resume` ops answer
/// `{"ok":false,…}` instead of acting. Shared listeners
/// ([`serve_tcp`]/[`serve_unix`]) run every connection with
/// `admin = false`, so no single remote client can stall every other
/// client's jobs; the single-connection [`serve_duplex`] (whose
/// transport the caller constructed and controls) allows them.
fn serve_conn<R, W>(
    session: Arc<Compiler>,
    reader: R,
    writer: W,
    admin: bool,
    limits: ServiceLimits,
    drain: Option<DrainHandle>,
) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
{
    let writer = Arc::new(Mutex::new(writer));
    let handles: Arc<Mutex<HashMap<u64, ConnJob>>> = Arc::new(Mutex::new(HashMap::new()));
    let completions = CompletionQueue::new();
    let outstanding = Arc::new(AtomicUsize::new(0));

    let pump = {
        let writer = Arc::clone(&writer);
        let handles = Arc::clone(&handles);
        let completions = completions.clone();
        let outstanding = Arc::clone(&outstanding);
        std::thread::Builder::new()
            .name("qompress-service-pump".to_string())
            .spawn(move || pump_loop(&writer, &handles, &completions, &outstanding))
            .expect("spawn completion pump")
    };

    let mut conn = ConnState {
        session: &session,
        limits: &limits,
        outstanding: &outstanding,
        total_jobs: 0,
        topologies: HashMap::new(),
        drain: drain.as_ref(),
    };

    let mut result = Ok(());
    let mut reader = BufReader::new(reader);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        // Bounded line read: a client streaming bytes with no `\n` (or an
        // absurdly long line) must not grow this buffer without limit and
        // OOM a shared server. Oversized lines end the connection with an
        // error line — resynchronizing mid-line is not worth trusting.
        buf.clear();
        let n = match (&mut reader)
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(n) => n,
            // The transport's read timeout fired (`SO_RCVTIMEO` on a
            // socket, `set_read_timeout` on the loopback): the client
            // went idle. Tell it why, then close cleanly — an idle
            // disconnect is policy, not an I/O failure.
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let mut w = writer.lock().expect("service writer poisoned");
                let _ = writeln!(w, "{}", idle_timeout_line(limits.idle_timeout));
                let _ = w.flush();
                break;
            }
            Err(err) => {
                result = Err(err);
                break;
            }
        };
        if n == 0 {
            break; // clean EOF
        }
        if buf.len() > MAX_LINE_BYTES {
            let mut w = writer.lock().expect("service writer poisoned");
            let _ = writeln!(
                w,
                "{}",
                error_line(&format!("request line exceeds {MAX_LINE_BYTES} bytes"))
            );
            let _ = w.flush();
            break;
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Take the writer lock *before* handling the request: a submit's
        // job can finish (e.g. a cache hit) before this thread writes the
        // response, and the pump must not slip that job's event onto the
        // wire first — a client should never see an event for a job id it
        // has not been told about. The pump never holds the handles lock
        // while waiting for the writer, so this ordering cannot deadlock.
        let mut w = writer.lock().expect("service writer poisoned");
        let response = handle_line(&handles, &completions, line, admin, &mut conn);
        if let Err(err) = writeln!(w, "{response}").and_then(|()| w.flush()) {
            result = Err(err);
            break;
        }
        drop(w);
    }

    // EOF (or error): wake the pump; it drains already-buffered
    // completions and exits.
    completions.close();
    pump.join().expect("completion pump panicked");
    result
}

/// Writes one event line per completed job until the queue closes,
/// releasing the job's slot in the connection's outstanding count as
/// each terminal event is recorded.
fn pump_loop(
    writer: &Mutex<impl Write>,
    handles: &Mutex<HashMap<u64, ConnJob>>,
    completions: &CompletionQueue,
    outstanding: &AtomicUsize,
) {
    while let Some(id) = completions.pop() {
        let handle = match handles.lock().expect("service handles poisoned").get(&id.0) {
            Some(ConnJob::Active(handle)) => handle.clone(),
            _ => continue,
        };
        let Some(outcome) = handle.poll() else {
            continue;
        };
        // The event below is this job's terminal notification: collapse
        // the tracked entry to its status so the handle (and the full
        // result it retains) is freed, bounding a long-lived
        // connection's memory by outstanding work, not total submits.
        // The collapse is also the moment the job stops counting against
        // the connection's concurrent-jobs quota.
        handles
            .lock()
            .expect("service handles poisoned")
            .insert(id.0, ConnJob::Finished(outcome.status()));
        outstanding.fetch_sub(1, Ordering::AcqRel);
        let event = match outcome {
            JobOutcome::Done(result) => ServiceEvent::Done {
                job: id.0,
                label: handle.label().to_string(),
                strategy: result.strategy.clone(),
                result_fp: result_fingerprint(&result),
                metrics: WireMetrics::of(&result),
            },
            JobOutcome::Cancelled => ServiceEvent::Cancelled {
                job: id.0,
                label: handle.label().to_string(),
            },
            JobOutcome::Failed(error) => ServiceEvent::Failed {
                job: id.0,
                label: handle.label().to_string(),
                error,
            },
        };
        let mut w = writer.lock().expect("service writer poisoned");
        if writeln!(w, "{}", event.to_line())
            .and_then(|()| w.flush())
            .is_err()
        {
            // Client gone; stop streaming (jobs keep running).
            return;
        }
    }
}

/// Handles one request line, returning the response line.
fn handle_line(
    handles: &Mutex<HashMap<u64, ConnJob>>,
    completions: &CompletionQueue,
    line: &str,
    admin: bool,
    conn: &mut ConnState<'_>,
) -> String {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return error_line(&message),
    };
    match request {
        Request::Submit {
            label,
            strategy,
            topology,
            qasm,
        } => {
            // Drain first, then quotas and backpressure — all cost a
            // flag/counter read, while parsing a hostile multi-megabyte
            // payload does not.
            if conn.draining() {
                return draining_line();
            }
            if let Err(response) = conn.admit(1) {
                return response;
            }
            let topology = match conn.resolve_topology(&topology) {
                Ok(t) => t,
                Err(message) => return error_line(&message),
            };
            let circuit = match parse_qasm_bounded(&qasm, conn.limits.max_circuit_qubits) {
                Ok(c) => c,
                Err(err) => return error_line(&format!("{err}")),
            };
            if circuit.len() > conn.limits.max_circuit_gates {
                return quota_line(
                    "circuit_gates",
                    conn.limits.max_circuit_gates as u64,
                    &format!(
                        "circuit has {} gates, exceeding the limit of {}",
                        circuit.len(),
                        conn.limits.max_circuit_gates
                    ),
                );
            }
            // Hold the handles lock across submit + insert: a fast job
            // (e.g. a cache hit) can reach the completion queue before
            // this thread runs again, and the pump must find the handle
            // when it pops that id — it blocks on this same lock until
            // the insert is done.
            let mut map = handles.lock().expect("service handles poisoned");
            let handle = conn.session.submit_watched(
                BatchJob::new(label, circuit, strategy, topology),
                completions,
            );
            let id = handle.id().0;
            let status = handle.status();
            map.insert(id, ConnJob::Active(handle));
            conn.note_submitted(1);
            format!(
                "{{\"ok\":true,\"op\":\"submit\",\"job\":{id},\"status\":\"{}\"}}",
                status.name()
            )
        }
        Request::SubmitSweep {
            label,
            strategy,
            topology,
            qasm,
            bindings,
        } => {
            if conn.draining() {
                return draining_line();
            }
            if bindings.len() > conn.limits.max_sweep_bindings {
                return quota_line(
                    "sweep_bindings",
                    conn.limits.max_sweep_bindings as u64,
                    &format!(
                        "sweep carries {} bindings, exceeding the limit of {}",
                        bindings.len(),
                        conn.limits.max_sweep_bindings
                    ),
                );
            }
            if let Err(response) = conn.admit(bindings.len()) {
                return response;
            }
            let topology = match conn.resolve_topology(&topology) {
                Ok(t) => t,
                Err(message) => return error_line(&message),
            };
            let skeleton =
                match parse_parametric_qasm_bounded(&qasm, conn.limits.max_circuit_qubits) {
                    Ok(s) => s,
                    Err(err) => return error_line(&format!("{err}")),
                };
            if skeleton.len() > conn.limits.max_circuit_gates {
                return quota_line(
                    "circuit_gates",
                    conn.limits.max_circuit_gates as u64,
                    &format!(
                        "skeleton has {} gates, exceeding the limit of {}",
                        skeleton.len(),
                        conn.limits.max_circuit_gates
                    ),
                );
            }
            // Arity is validated before anything is enqueued, so a sweep
            // is accepted or rejected atomically (angles are already
            // known finite from request parsing).
            for (i, angles) in bindings.iter().enumerate() {
                if angles.len() != skeleton.n_params() {
                    return error_line(&format!(
                        "bindings[{i}] has {} angle(s) but the skeleton has {} parameter(s)",
                        angles.len(),
                        skeleton.n_params()
                    ));
                }
            }
            let sweep = ParamSweep::new(skeleton);
            // Same lock discipline as `submit`: the pump must find every
            // handle when its completion pops.
            let mut map = handles.lock().expect("service handles poisoned");
            let ids: Vec<u64> = bindings
                .iter()
                .enumerate()
                .map(|(i, angles)| {
                    let job = sweep.job(format!("{label}#{i}"), strategy, topology.clone(), angles);
                    let handle = conn.session.submit_watched(job, completions);
                    let id = handle.id().0;
                    map.insert(id, ConnJob::Active(handle));
                    id
                })
                .collect();
            conn.note_submitted(ids.len());
            let ids = ids.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            format!(
                "{{\"ok\":true,\"op\":\"submit_sweep\",\"jobs\":[{ids}],\"status\":\"queued\"}}"
            )
        }
        Request::Topology { name, nodes, edges } => conn.upload_topology(name, nodes, edges),
        Request::Poll { job } => {
            let status = match handles.lock().expect("service handles poisoned").get(&job) {
                Some(ConnJob::Active(handle)) => handle.status(),
                Some(ConnJob::Finished(status)) => *status,
                None => return error_line(&format!("unknown job {job}")),
            };
            format!(
                "{{\"ok\":true,\"op\":\"poll\",\"job\":{job},\"status\":\"{}\"}}",
                status.name()
            )
        }
        Request::Cancel { job } => {
            let handle = match handles.lock().expect("service handles poisoned").get(&job) {
                Some(ConnJob::Active(handle)) => Some(handle.clone()),
                // Already terminal and pruned: nothing left to cancel.
                Some(ConnJob::Finished(_)) => None,
                None => return error_line(&format!("unknown job {job}")),
            };
            let cancelled = handle.map(|h| h.cancel()).unwrap_or(false);
            format!("{{\"ok\":true,\"op\":\"cancel\",\"job\":{job},\"cancelled\":{cancelled}}}")
        }
        Request::Stats => {
            let m = conn.session.service_metrics();
            let c = conn.session.cache_stats();
            let skeleton = conn.session.skeleton_cache_stats();
            let tiers = conn.session.tiered_cache_stats();
            let oracle = conn.session.oracle_stats();
            format!(
                "{{\"ok\":true,\"op\":\"stats\",\"submitted\":{},\"queued\":{},\
                 \"running\":{},\"completed\":{},\"cancelled\":{},\"failed\":{},\
                 \"cache\":{},\"skeleton_cache\":{},\"tiers\":{},\"oracle\":{}}}",
                m.submitted,
                m.queued,
                m.running,
                m.completed,
                m.cancelled,
                m.failed,
                c.to_json(),
                skeleton.to_json(),
                tiers.to_json(),
                oracle.to_json()
            )
        }
        Request::Pause => {
            if !admin {
                return error_line("`pause` is disabled on shared listeners");
            }
            conn.session.pause_workers();
            "{\"ok\":true,\"op\":\"pause\"}".to_string()
        }
        Request::Resume => {
            if !admin {
                return error_line("`resume` is disabled on shared listeners");
            }
            conn.session.resume_workers();
            "{\"ok\":true,\"op\":\"resume\"}".to_string()
        }
    }
}

fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(message))
}

/// A structured quota rejection: `kind` names the exhausted limit so
/// clients can react programmatically, `limit` carries its value.
fn quota_line(kind: &str, limit: u64, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"quota\":\"{kind}\",\"limit\":{limit}}}",
        escape(message)
    )
}

/// A structured backpressure rejection: the client should back off and
/// retry — `queue_depth` tells it how deep the session queue was.
fn busy_line(depth: usize, limit: usize) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"server busy: queue depth {depth} at the limit of \
         {limit}\",\"busy\":true,\"queue_depth\":{depth},\"limit\":{limit}}}"
    )
}

/// A structured drain rejection: the server is shutting down and takes
/// no new work — submit elsewhere; do not retry here.
fn draining_line() -> String {
    "{\"ok\":false,\"error\":\"server is draining: no new jobs accepted\",\"draining\":true}"
        .to_string()
}

/// The final line an idle connection is sent before the server closes it.
fn idle_timeout_line(timeout: Option<Duration>) -> String {
    let detail = match timeout {
        Some(t) => format!("no request within {t:?}"),
        None => "read timed out".to_string(),
    };
    format!(
        "{{\"ok\":false,\"error\":\"idle timeout: {}\",\"timeout\":true}}",
        escape(&detail)
    )
}

/// Accepts TCP connections forever, serving each on its own thread over
/// the shared session with [`ServiceLimits::default`] limits. Bind the
/// listener yourself (port 0 for tests):
///
/// ```no_run
/// use std::net::TcpListener;
/// use std::sync::Arc;
/// let session = Arc::new(qompress::Compiler::builder().build());
/// let listener = TcpListener::bind("127.0.0.1:7878").unwrap();
/// qompress_service::serve_tcp(listener, session).unwrap();
/// ```
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
pub fn serve_tcp(listener: TcpListener, session: Arc<Compiler>) -> io::Result<()> {
    serve_tcp_with_limits(listener, session, ServiceLimits::default())
}

/// [`serve_tcp`] with explicit admission limits; `limits.idle_timeout`
/// is applied to every accepted stream via `set_read_timeout`
/// (best-effort — a socket that refuses the option still serves, just
/// without an idle timeout).
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
pub fn serve_tcp_with_limits(
    listener: TcpListener,
    session: Arc<Compiler>,
    limits: ServiceLimits,
) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let _ = stream.set_read_timeout(limits.idle_timeout);
        let session = Arc::clone(&session);
        let limits = limits.clone();
        let reader = stream.try_clone()?;
        std::thread::Builder::new()
            .name("qompress-service-conn".to_string())
            .spawn(move || {
                let _ = serve_conn(session, reader, stream, false, limits, None);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// How long a draining accept loop sleeps between polls of its
/// (nonblocking) listener and the drain flag.
const DRAIN_POLL: Duration = Duration::from_millis(25);

/// [`serve_tcp_with_limits`] watching a [`DrainHandle`]: the listener is
/// switched to nonblocking so the accept loop can poll the flag, and the
/// call **returns `Ok(())` once the handle trips** — no new connections
/// are accepted from that point. Connections already being served keep
/// running (their submits answer `draining`, their event streams flush);
/// waiting out in-flight jobs is the caller's next step (see
/// `qompress-serve --drain-timeout`).
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
pub fn serve_tcp_draining(
    listener: TcpListener,
    session: Arc<Compiler>,
    limits: ServiceLimits,
    drain: DrainHandle,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if drain.is_draining() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                // The accepted stream inherits nonblocking from the
                // listener on some platforms — undo that before handing
                // it to the blocking per-connection reader.
                stream.set_nonblocking(false)?;
                let _ = stream.set_read_timeout(limits.idle_timeout);
                let session = Arc::clone(&session);
                let limits = limits.clone();
                let drain = drain.clone();
                let reader = stream.try_clone()?;
                std::thread::Builder::new()
                    .name("qompress-service-conn".to_string())
                    .spawn(move || {
                        let _ = serve_conn(session, reader, stream, false, limits, Some(drain));
                    })
                    .expect("spawn connection thread");
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(DRAIN_POLL);
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
}

/// [`serve_tcp`] over a Unix-domain socket listener.
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
#[cfg(unix)]
pub fn serve_unix(
    listener: std::os::unix::net::UnixListener,
    session: Arc<Compiler>,
) -> io::Result<()> {
    serve_unix_with_limits(listener, session, ServiceLimits::default())
}

/// [`serve_unix`] with explicit admission limits; `limits.idle_timeout`
/// is applied to every accepted stream via `set_read_timeout`
/// (best-effort, as with [`serve_tcp_with_limits`]).
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
#[cfg(unix)]
pub fn serve_unix_with_limits(
    listener: std::os::unix::net::UnixListener,
    session: Arc<Compiler>,
    limits: ServiceLimits,
) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let _ = stream.set_read_timeout(limits.idle_timeout);
        let session = Arc::clone(&session);
        let limits = limits.clone();
        let reader = stream.try_clone()?;
        std::thread::Builder::new()
            .name("qompress-service-conn".to_string())
            .spawn(move || {
                let _ = serve_conn(session, reader, stream, false, limits, None);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// [`serve_tcp_draining`] over a Unix-domain socket listener: returns
/// `Ok(())` once the handle trips; already-accepted connections keep
/// running with submits answering `draining`.
///
/// # Errors
///
/// Returns the first `accept` error; per-connection I/O errors only end
/// their own connection thread.
#[cfg(unix)]
pub fn serve_unix_draining(
    listener: std::os::unix::net::UnixListener,
    session: Arc<Compiler>,
    limits: ServiceLimits,
    drain: DrainHandle,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if drain.is_draining() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                let _ = stream.set_read_timeout(limits.idle_timeout);
                let session = Arc::clone(&session);
                let limits = limits.clone();
                let drain = drain.clone();
                let reader = stream.try_clone()?;
                std::thread::Builder::new()
                    .name("qompress-service-conn".to_string())
                    .spawn(move || {
                        let _ = serve_conn(session, reader, stream, false, limits, Some(drain));
                    })
                    .expect("spawn connection thread");
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(DRAIN_POLL);
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
}
