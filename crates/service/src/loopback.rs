//! An in-memory duplex byte stream — the loopback transport.
//!
//! [`loopback`] returns two connected ends; bytes written to one end are
//! read from the other, with blocking reads and EOF on writer drop —
//! exactly the semantics the server expects from a TCP or Unix-socket
//! stream, minus the kernel. Tests and the CI smoke example run the full
//! wire protocol over this.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One direction of byte flow.
#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

#[derive(Debug, Default)]
struct PipeState {
    data: VecDeque<u8>,
    /// Set when the write half drops: readers drain the buffer then EOF.
    closed: bool,
}

impl Pipe {
    fn close(&self) {
        let mut state = self.state.lock().expect("loopback pipe poisoned");
        state.closed = true;
        self.readable.notify_all();
    }
}

/// The read half of one loopback direction. Blocks until bytes arrive;
/// returns `Ok(0)` (EOF) once the peer's write half is dropped and the
/// buffer is drained. With a read timeout set, a read that sees no
/// bytes for the full duration fails with [`io::ErrorKind::WouldBlock`]
/// — the same signal a `TcpStream` with `SO_RCVTIMEO` gives, so the
/// server's idle-timeout handling is exercised identically over both
/// transports.
#[derive(Debug)]
pub struct LoopbackReader {
    pipe: Arc<Pipe>,
    timeout: Option<Duration>,
}

impl LoopbackReader {
    /// Sets (or with `None`, clears) the per-read timeout — the
    /// loopback analogue of `TcpStream::set_read_timeout`.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }
}

impl Read for LoopbackReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let mut state = self.pipe.state.lock().expect("loopback pipe poisoned");
        loop {
            if !state.data.is_empty() {
                let n = buf.len().min(state.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.data.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            state = match deadline {
                None => self
                    .pipe
                    .readable
                    .wait(state)
                    .expect("loopback pipe poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "loopback read timed out",
                        ));
                    }
                    let (state, _) = self
                        .pipe
                        .readable
                        .wait_timeout(state, deadline - now)
                        .expect("loopback pipe poisoned");
                    state
                }
            };
        }
    }
}

impl Drop for LoopbackReader {
    /// Dropping the reader closes the direction so the peer's writes fail
    /// fast instead of buffering forever.
    fn drop(&mut self) {
        self.pipe.close();
    }
}

/// The write half of one loopback direction. Writes never block (the
/// buffer is unbounded); they fail with [`io::ErrorKind::BrokenPipe`]
/// once the peer's read half is gone.
#[derive(Debug)]
pub struct LoopbackWriter {
    pipe: Arc<Pipe>,
}

impl Write for LoopbackWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.pipe.state.lock().expect("loopback pipe poisoned");
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "loopback peer closed",
            ));
        }
        state.data.extend(buf.iter().copied());
        self.pipe.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for LoopbackWriter {
    /// Dropping the writer EOFs the peer's reader once it drains.
    fn drop(&mut self) {
        self.pipe.close();
    }
}

/// One end of a loopback connection: a reader for inbound bytes and a
/// writer for outbound bytes. Split it to hand the halves to different
/// threads (the server does).
#[derive(Debug)]
pub struct LoopbackEnd {
    /// Inbound bytes (written by the peer).
    pub reader: LoopbackReader,
    /// Outbound bytes (read by the peer).
    pub writer: LoopbackWriter,
}

impl LoopbackEnd {
    /// Splits the end into its independent halves.
    pub fn split(self) -> (LoopbackReader, LoopbackWriter) {
        (self.reader, self.writer)
    }
}

impl Read for LoopbackEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reader.read(buf)
    }
}

impl Write for LoopbackEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Creates a connected pair of in-memory duplex streams.
pub fn loopback() -> (LoopbackEnd, LoopbackEnd) {
    let a_to_b = Arc::new(Pipe::default());
    let b_to_a = Arc::new(Pipe::default());
    (
        LoopbackEnd {
            reader: LoopbackReader {
                pipe: Arc::clone(&b_to_a),
                timeout: None,
            },
            writer: LoopbackWriter {
                pipe: Arc::clone(&a_to_b),
            },
        },
        LoopbackEnd {
            reader: LoopbackReader {
                pipe: a_to_b,
                timeout: None,
            },
            writer: LoopbackWriter { pipe: b_to_a },
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn bytes_flow_both_ways() {
        let (mut a, mut b) = loopback();
        a.write_all(b"ping\n").unwrap();
        let mut line = String::new();
        BufReader::new(&mut b).read_line(&mut line).unwrap();
        assert_eq!(line, "ping\n");
        b.write_all(b"pong\n").unwrap();
        let mut line = String::new();
        BufReader::new(&mut a).read_line(&mut line).unwrap();
        assert_eq!(line, "pong\n");
    }

    #[test]
    fn writer_drop_eofs_reader_after_drain() {
        let (a, b) = loopback();
        let (_a_reader, mut a_writer) = a.split();
        a_writer.write_all(b"tail").unwrap();
        drop(a_writer);
        let (mut b_reader, _b_writer) = b.split();
        let mut out = Vec::new();
        b_reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"tail");
    }

    #[test]
    fn reader_drop_breaks_writes() {
        let (a, b) = loopback();
        let (a_reader, _a_writer) = a.split();
        drop(a_reader);
        let (_b_reader, mut b_writer) = b.split();
        let err = b_writer.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn read_timeout_fires_and_clears() {
        let (a, b) = loopback();
        let (mut b_reader, _b_writer) = b.split();
        let (_a_reader, mut a_writer) = a.split();
        b_reader.set_read_timeout(Some(Duration::from_millis(20)));
        let mut buf = [0u8; 4];
        // No bytes for the full window: WouldBlock, like SO_RCVTIMEO.
        let err = b_reader.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Bytes available beat the clock; a cleared timeout blocks again.
        a_writer.write_all(b"data").unwrap();
        assert_eq!(b_reader.read(&mut buf).unwrap(), 4);
        b_reader.set_read_timeout(None);
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 2];
            b_reader.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(Duration::from_millis(30));
        a_writer.write_all(b"ok").unwrap();
        assert_eq!(&handle.join().unwrap(), b"ok");
    }

    #[test]
    fn blocking_read_wakes_on_write() {
        let (a, b) = loopback();
        let (mut b_reader, _b_writer) = b.split();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b_reader.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (_a_reader, mut a_writer) = a.split();
        a_writer.write_all(b"hello").unwrap();
        assert_eq!(&handle.join().unwrap(), b"hello");
    }
}
