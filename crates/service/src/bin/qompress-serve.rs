//! `qompress-serve` — run the compilation service on a socket.
//!
//! ```text
//! qompress-serve --tcp 127.0.0.1:7878 [--workers N] [--cache-capacity N]
//! qompress-serve --unix /tmp/qompress.sock [--workers N]
//! qompress-serve --tcp ADDR --cache-dir /var/cache/qompress \
//!                [--cache-disk-bytes N] [--drain-timeout SECS]
//! ```
//!
//! One long-lived `Compiler` session (shared worker pool, topology
//! registry, result cache) serves every connection; the protocol is
//! line-delimited JSON (see the `qompress-service` crate docs). Exits 2
//! on bad flags.
//!
//! `--cache-dir PATH` attaches the persistent on-disk cache tier: every
//! compiled result is written back to `PATH` (content-addressed,
//! corruption-checked, capped at `--cache-disk-bytes`, default 1 GiB),
//! and a restarted server pointed at the same directory serves previously
//! compiled circuits as disk hits instead of recompiling. Several server
//! processes may share one directory. An unopenable cache dir does
//! **not** abort the server — it starts memory-only and prints the
//! degradation warning to stderr.
//!
//! ## Graceful drain
//!
//! On `SIGINT`/`SIGTERM` (unix) the server drains instead of dying
//! mid-job: the listener stops accepting, new submits on live
//! connections answer `{"ok":false,"draining":true,…}`, and the process
//! waits up to `--drain-timeout` seconds (default 30; `0` skips the
//! wait) for queued + running jobs to reach zero — which also flushes
//! their disk write-backs, since persistence happens inside each job —
//! before exiting.
//!
//! Admission limits (all optional; see `ServiceLimits` for the
//! defaults):
//!
//! ```text
//!   --max-qubits N            circuit/skeleton qubit cap
//!   --max-gates N             circuit/skeleton gate cap
//!   --max-topology N          topology spec/upload node cap
//!   --max-concurrent-jobs N   outstanding jobs per connection
//!   --max-total-jobs N        lifetime jobs per connection
//!   --max-sweep-bindings N    bindings per submit_sweep
//!   --max-queue-depth N       queue depth before `busy` backpressure
//!   --idle-timeout-secs N     close idle connections (0 disables;
//!                             default 300)
//!   --drain-timeout SECS      in-flight-job wait on shutdown signal
//!                             (0 skips the wait; default 30)
//! ```
//!
//! Distance-oracle tuning (utility-scale devices):
//!
//! ```text
//!   --oracle-exact-threshold N   devices with at most N units use exact
//!                                Dijkstra rows (default 256); larger
//!                                ones switch to the O(K·V) landmark
//!                                oracle
//!   --oracle-landmarks K         landmark count for landmark mode
//!                                (default 0 = auto: ceil(sqrt(slots)),
//!                                clamped to 8..=64)
//! ```

use qompress::Compiler;
use qompress_service::{DrainHandle, ServiceLimits, DEFAULT_DISK_CACHE_BYTES};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The binary's default idle timeout. The library default is `None`
/// (callers owning the transport rarely want one), but a socket server
/// exposed to real clients should not hold fds for silent peers
/// forever.
const DEFAULT_IDLE_TIMEOUT_SECS: u64 = 300;

/// Default wait for in-flight jobs after a shutdown signal.
const DEFAULT_DRAIN_TIMEOUT_SECS: u64 = 30;

/// Minimal signal plumbing on top of `signal(2)` — the offline build has
/// no libc crate, and all the handler may safely do is flip an atomic.
/// A watcher thread translates the flag into a [`DrainHandle`] trip.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    /// Async-signal-safe handler: a relaxed atomic store and nothing
    /// else.
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs the handler for `SIGINT` and `SIGTERM`.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn received() -> bool {
        SHUTDOWN.load(Ordering::Acquire)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qompress-serve (--tcp ADDR | --unix PATH) \
         [--workers N] [--cache-capacity N] [--cache-dir PATH] \
         [--cache-disk-bytes N] [--max-qubits N] \
         [--max-gates N] [--max-topology N] [--max-concurrent-jobs N] \
         [--max-total-jobs N] [--max-sweep-bindings N] \
         [--max-queue-depth N] [--idle-timeout-secs N] \
         [--drain-timeout SECS] [--oracle-exact-threshold N] \
         [--oracle-landmarks K]"
    );
    ExitCode::from(2)
}

/// Waits for the session's queued + running jobs to reach zero, up to
/// `timeout` — the in-flight half of a graceful drain. Returns whether
/// the session fully drained.
fn await_inflight(session: &Compiler, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        let m = session.service_metrics();
        if m.queued == 0 && m.running == 0 {
            return true;
        }
        if Instant::now() >= deadline {
            eprintln!(
                "qompress-serve: drain timeout with {} queued / {} running job(s) left",
                m.queued, m.running
            );
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() -> ExitCode {
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut workers = 0usize;
    let mut cache_capacity: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_disk_bytes = DEFAULT_DISK_CACHE_BYTES;
    let mut drain_timeout_secs = DEFAULT_DRAIN_TIMEOUT_SECS;
    let mut config = qompress::CompilerConfig::paper();
    let mut limits = ServiceLimits {
        idle_timeout: Some(Duration::from_secs(DEFAULT_IDLE_TIMEOUT_SECS)),
        ..ServiceLimits::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("`{name}` needs a value");
            }
            v
        };
        // Flags carrying a plain count share one parse-or-usage shape.
        macro_rules! count_flag {
            ($name:literal => $slot:expr) => {
                match value($name).and_then(|v| v.parse().ok()) {
                    Some(v) => $slot = v,
                    None => return usage(),
                }
            };
        }
        match flag.as_str() {
            "--tcp" => match value("--tcp") {
                Some(v) => tcp = Some(v),
                None => return usage(),
            },
            "--unix" => match value("--unix") {
                Some(v) => unix = Some(v),
                None => return usage(),
            },
            "--workers" => count_flag!("--workers" => workers),
            "--cache-capacity" => match value("--cache-capacity").and_then(|v| v.parse().ok()) {
                Some(v) => cache_capacity = Some(v),
                None => return usage(),
            },
            "--cache-dir" => match value("--cache-dir") {
                Some(v) => cache_dir = Some(v),
                None => return usage(),
            },
            "--cache-disk-bytes" => {
                count_flag!("--cache-disk-bytes" => cache_disk_bytes)
            }
            "--max-qubits" => count_flag!("--max-qubits" => limits.max_circuit_qubits),
            "--max-gates" => count_flag!("--max-gates" => limits.max_circuit_gates),
            "--max-topology" => count_flag!("--max-topology" => limits.max_topology_nodes),
            "--max-concurrent-jobs" => {
                count_flag!("--max-concurrent-jobs" => limits.max_concurrent_jobs)
            }
            "--max-total-jobs" => count_flag!("--max-total-jobs" => limits.max_total_jobs),
            "--max-sweep-bindings" => {
                count_flag!("--max-sweep-bindings" => limits.max_sweep_bindings)
            }
            "--max-queue-depth" => count_flag!("--max-queue-depth" => limits.max_queue_depth),
            "--idle-timeout-secs" => {
                match value("--idle-timeout-secs").and_then(|v| v.parse::<u64>().ok()) {
                    Some(0) => limits.idle_timeout = None,
                    Some(secs) => limits.idle_timeout = Some(Duration::from_secs(secs)),
                    None => return usage(),
                }
            }
            "--drain-timeout" => count_flag!("--drain-timeout" => drain_timeout_secs),
            "--oracle-exact-threshold" => {
                count_flag!("--oracle-exact-threshold" => config.oracle_exact_threshold)
            }
            "--oracle-landmarks" => count_flag!("--oracle-landmarks" => config.oracle_landmarks),
            _ => {
                eprintln!("unknown flag `{flag}`");
                return usage();
            }
        }
    }

    let mut builder = Compiler::builder().workers(workers).config(config);
    if let Some(capacity) = cache_capacity {
        builder = builder.cache_capacity(capacity);
    }
    if let Some(dir) = &cache_dir {
        // Best-effort pre-create; failure is not fatal — the builder
        // degrades to memory-only and reports it as a diagnostic below.
        let _ = std::fs::create_dir_all(dir);
        builder = builder.persist_dir(dir).persist_max_bytes(cache_disk_bytes);
    }
    let session = Arc::new(builder.build());
    for warning in session.diagnostics() {
        eprintln!("qompress-serve: warning: {warning}");
    }
    if let Some(dir) = &cache_dir {
        if session.persistence_enabled() {
            eprintln!("qompress-serve: persistent cache at {dir} (cap {cache_disk_bytes} bytes)");
        }
    }

    // Shutdown signal → drain trip, via a watcher thread (the handler
    // itself may only flip an atomic).
    let drain = DrainHandle::new();
    #[cfg(unix)]
    {
        signals::install();
        let drain = drain.clone();
        std::thread::Builder::new()
            .name("qompress-serve-signals".to_string())
            .spawn(move || loop {
                if signals::received() {
                    eprintln!("qompress-serve: shutdown signal — draining");
                    drain.trigger();
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            })
            .expect("spawn signal watcher");
    }

    let served = match (tcp, unix) {
        (Some(addr), None) => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(err) => {
                    eprintln!("cannot bind tcp {addr}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "qompress-serve: tcp {} ({} workers)",
                listener.local_addr().map_or(addr, |a| a.to_string()),
                session.workers()
            );
            qompress_service::serve_tcp_draining(
                listener,
                Arc::clone(&session),
                limits,
                drain.clone(),
            )
        }
        #[cfg(unix)]
        (None, Some(path)) => {
            let listener = match std::os::unix::net::UnixListener::bind(&path) {
                Ok(l) => l,
                Err(err) => {
                    eprintln!("cannot bind unix socket {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "qompress-serve: unix {path} ({} workers)",
                session.workers()
            );
            qompress_service::serve_unix_draining(
                listener,
                Arc::clone(&session),
                limits,
                drain.clone(),
            )
        }
        _ => return usage(),
    };
    if let Err(err) = served {
        eprintln!("accept failed: {err}");
        return ExitCode::FAILURE;
    }

    // The accept loop returned: the drain tripped. Wait out in-flight
    // jobs (bounded), which also flushes their disk write-backs — each
    // job persists its own result before reporting done.
    if drain_timeout_secs > 0 {
        await_inflight(&session, Duration::from_secs(drain_timeout_secs));
    }
    let m = session.service_metrics();
    eprintln!(
        "qompress-serve: drained ({} completed, {} cancelled, {} failed)",
        m.completed, m.cancelled, m.failed
    );
    ExitCode::SUCCESS
}
