//! `qompress-serve` — run the compilation service on a socket.
//!
//! ```text
//! qompress-serve --tcp 127.0.0.1:7878 [--workers N] [--cache-capacity N]
//! qompress-serve --unix /tmp/qompress.sock [--workers N]
//! qompress-serve --tcp ADDR --cache-dir /var/cache/qompress \
//!                [--cache-disk-bytes N]
//! ```
//!
//! One long-lived `Compiler` session (shared worker pool, topology
//! registry, result cache) serves every connection; the protocol is
//! line-delimited JSON (see the `qompress-service` crate docs). Exits 2
//! on bad flags.
//!
//! `--cache-dir PATH` attaches the persistent on-disk cache tier: every
//! compiled result is written back to `PATH` (content-addressed,
//! corruption-checked, capped at `--cache-disk-bytes`, default 1 GiB),
//! and a restarted server pointed at the same directory serves previously
//! compiled circuits as disk hits instead of recompiling. Several server
//! processes may share one directory.
//!
//! Admission limits (all optional; see `ServiceLimits` for the
//! defaults):
//!
//! ```text
//!   --max-qubits N            circuit/skeleton qubit cap
//!   --max-gates N             circuit/skeleton gate cap
//!   --max-topology N          topology spec/upload node cap
//!   --max-concurrent-jobs N   outstanding jobs per connection
//!   --max-total-jobs N        lifetime jobs per connection
//!   --max-sweep-bindings N    bindings per submit_sweep
//!   --max-queue-depth N       queue depth before `busy` backpressure
//!   --idle-timeout-secs N     close idle connections (0 disables;
//!                             default 300)
//! ```

use qompress::Compiler;
use qompress_service::{ServiceLimits, DEFAULT_DISK_CACHE_BYTES};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// The binary's default idle timeout. The library default is `None`
/// (callers owning the transport rarely want one), but a socket server
/// exposed to real clients should not hold fds for silent peers
/// forever.
const DEFAULT_IDLE_TIMEOUT_SECS: u64 = 300;

fn usage() -> ExitCode {
    eprintln!(
        "usage: qompress-serve (--tcp ADDR | --unix PATH) \
         [--workers N] [--cache-capacity N] [--cache-dir PATH] \
         [--cache-disk-bytes N] [--max-qubits N] \
         [--max-gates N] [--max-topology N] [--max-concurrent-jobs N] \
         [--max-total-jobs N] [--max-sweep-bindings N] \
         [--max-queue-depth N] [--idle-timeout-secs N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut workers = 0usize;
    let mut cache_capacity: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_disk_bytes = DEFAULT_DISK_CACHE_BYTES;
    let mut limits = ServiceLimits {
        idle_timeout: Some(Duration::from_secs(DEFAULT_IDLE_TIMEOUT_SECS)),
        ..ServiceLimits::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("`{name}` needs a value");
            }
            v
        };
        // Flags carrying a plain count share one parse-or-usage shape.
        macro_rules! count_flag {
            ($name:literal => $slot:expr) => {
                match value($name).and_then(|v| v.parse().ok()) {
                    Some(v) => $slot = v,
                    None => return usage(),
                }
            };
        }
        match flag.as_str() {
            "--tcp" => match value("--tcp") {
                Some(v) => tcp = Some(v),
                None => return usage(),
            },
            "--unix" => match value("--unix") {
                Some(v) => unix = Some(v),
                None => return usage(),
            },
            "--workers" => count_flag!("--workers" => workers),
            "--cache-capacity" => match value("--cache-capacity").and_then(|v| v.parse().ok()) {
                Some(v) => cache_capacity = Some(v),
                None => return usage(),
            },
            "--cache-dir" => match value("--cache-dir") {
                Some(v) => cache_dir = Some(v),
                None => return usage(),
            },
            "--cache-disk-bytes" => {
                count_flag!("--cache-disk-bytes" => cache_disk_bytes)
            }
            "--max-qubits" => count_flag!("--max-qubits" => limits.max_circuit_qubits),
            "--max-gates" => count_flag!("--max-gates" => limits.max_circuit_gates),
            "--max-topology" => count_flag!("--max-topology" => limits.max_topology_nodes),
            "--max-concurrent-jobs" => {
                count_flag!("--max-concurrent-jobs" => limits.max_concurrent_jobs)
            }
            "--max-total-jobs" => count_flag!("--max-total-jobs" => limits.max_total_jobs),
            "--max-sweep-bindings" => {
                count_flag!("--max-sweep-bindings" => limits.max_sweep_bindings)
            }
            "--max-queue-depth" => count_flag!("--max-queue-depth" => limits.max_queue_depth),
            "--idle-timeout-secs" => {
                match value("--idle-timeout-secs").and_then(|v| v.parse::<u64>().ok()) {
                    Some(0) => limits.idle_timeout = None,
                    Some(secs) => limits.idle_timeout = Some(Duration::from_secs(secs)),
                    None => return usage(),
                }
            }
            _ => {
                eprintln!("unknown flag `{flag}`");
                return usage();
            }
        }
    }

    let mut builder = Compiler::builder().workers(workers);
    if let Some(capacity) = cache_capacity {
        builder = builder.cache_capacity(capacity);
    }
    if let Some(dir) = &cache_dir {
        // Pre-flight the directory for a friendly CLI error; the builder
        // itself panics on an unopenable persist dir (a deployment
        // error), which is uglier than exit-with-message.
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create cache dir {dir}: {err}");
            return ExitCode::FAILURE;
        }
        builder = builder.persist_dir(dir).persist_max_bytes(cache_disk_bytes);
    }
    let session = Arc::new(builder.build());
    if let Some(dir) = &cache_dir {
        eprintln!("qompress-serve: persistent cache at {dir} (cap {cache_disk_bytes} bytes)");
    }

    match (tcp, unix) {
        (Some(addr), None) => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(err) => {
                    eprintln!("cannot bind tcp {addr}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "qompress-serve: tcp {} ({} workers)",
                listener.local_addr().map_or(addr, |a| a.to_string()),
                session.workers()
            );
            if let Err(err) = qompress_service::serve_tcp_with_limits(listener, session, limits) {
                eprintln!("accept failed: {err}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        #[cfg(unix)]
        (None, Some(path)) => {
            let listener = match std::os::unix::net::UnixListener::bind(&path) {
                Ok(l) => l,
                Err(err) => {
                    eprintln!("cannot bind unix socket {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "qompress-serve: unix {path} ({} workers)",
                session.workers()
            );
            if let Err(err) = qompress_service::serve_unix_with_limits(listener, session, limits) {
                eprintln!("accept failed: {err}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
