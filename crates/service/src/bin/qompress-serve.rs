//! `qompress-serve` — run the compilation service on a socket.
//!
//! ```text
//! qompress-serve --tcp 127.0.0.1:7878 [--workers N] [--cache-capacity N]
//! qompress-serve --unix /tmp/qompress.sock [--workers N]
//! ```
//!
//! One long-lived `Compiler` session (shared worker pool, topology
//! registry, result cache) serves every connection; the protocol is
//! line-delimited JSON (see the `qompress-service` crate docs). Exits 2
//! on bad flags.

use qompress::Compiler;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: qompress-serve (--tcp ADDR | --unix PATH) \
         [--workers N] [--cache-capacity N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut workers = 0usize;
    let mut cache_capacity: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("`{name}` needs a value");
            }
            v
        };
        match flag.as_str() {
            "--tcp" => match value("--tcp") {
                Some(v) => tcp = Some(v),
                None => return usage(),
            },
            "--unix" => match value("--unix") {
                Some(v) => unix = Some(v),
                None => return usage(),
            },
            "--workers" => match value("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => return usage(),
            },
            "--cache-capacity" => match value("--cache-capacity").and_then(|v| v.parse().ok()) {
                Some(v) => cache_capacity = Some(v),
                None => return usage(),
            },
            _ => {
                eprintln!("unknown flag `{flag}`");
                return usage();
            }
        }
    }

    let mut builder = Compiler::builder().workers(workers);
    if let Some(capacity) = cache_capacity {
        builder = builder.cache_capacity(capacity);
    }
    let session = Arc::new(builder.build());

    match (tcp, unix) {
        (Some(addr), None) => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(err) => {
                    eprintln!("cannot bind tcp {addr}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "qompress-serve: tcp {} ({} workers)",
                listener.local_addr().map_or(addr, |a| a.to_string()),
                session.workers()
            );
            if let Err(err) = qompress_service::serve_tcp(listener, session) {
                eprintln!("accept failed: {err}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        #[cfg(unix)]
        (None, Some(path)) => {
            let listener = match std::os::unix::net::UnixListener::bind(&path) {
                Ok(l) => l,
                Err(err) => {
                    eprintln!("cannot bind unix socket {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "qompress-serve: unix {path} ({} workers)",
                session.workers()
            );
            if let Err(err) = qompress_service::serve_unix(listener, session) {
                eprintln!("accept failed: {err}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
