//! A minimal JSON value: parser and string escaping.
//!
//! The build image has no registry access (so no `serde`); this module
//! implements exactly what the line-delimited wire protocol needs — full
//! RFC 8259 parsing of one value per line (objects, arrays, strings with
//! escapes incl. `\uXXXX` surrogate pairs, numbers, booleans, null) and
//! string escaping for emission. Numbers are held as `f64`, which is
//! exact for every id and counter the protocol carries (< 2^53); the one
//! 64-bit payload (the result fingerprint) travels as a hex *string* for
//! that reason.

use std::fmt;

/// Maximum container nesting depth [`Json::parse`] accepts.
///
/// The parser recurses once per `[`/`{` level, so without a bound a
/// 16 MiB request line of `[[[[…` would overflow the parsing thread's
/// stack — an abort, not a catchable error, taking a shared listener
/// thread with it. 64 levels is far beyond anything the wire protocol
/// emits (its messages nest 3 deep) while keeping recursion trivially
/// stack-safe; deeper input is a parse *error* and the connection
/// survives.
pub const MAX_DEPTH: usize = 64;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys keep the last.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses exactly one JSON value (surrounded by optional whitespace).
    /// Containers may nest at most [`MAX_DEPTH`] levels deep.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, MAX_DEPTH)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes after JSON value at offset {pos}"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (last duplicate wins); `None` for
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    ///
    /// The bound is strictly below `2^53` (matching the emitter): at
    /// `2^53` and above, distinct written integers collapse to the same
    /// `f64` during parsing (e.g. `9007199254740993` rounds to `2^53`),
    /// so "exactly" can no longer be promised.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {}", byte as char, *pos))
    }
}

/// `depth` is the remaining nesting allowance: each container consumes
/// one level on the way down, and opening one with no allowance left is
/// an error — the recursion is therefore bounded at [`MAX_DEPTH`] frames
/// regardless of input length.
fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    if depth == 0 && matches!(bytes.get(*pos), Some(b'{') | Some(b'[')) {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} levels at offset {}",
            *pos
        ));
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth - 1),
        Some(b'[') => parse_array(bytes, pos, depth - 1),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let unit = parse_hex4(bytes, pos)?;
                        // Combine a UTF-16 surrogate pair when present. A
                        // lone or mispaired surrogate becomes U+FFFD — and
                        // a high surrogate followed by a \u escape that is
                        // NOT a low surrogate must not consume it (and
                        // must not overflow the pair arithmetic).
                        let ch = if (0xD800..0xDC00).contains(&unit) {
                            let next_is_low = bytes.get(*pos) == Some(&b'\\')
                                && bytes.get(*pos + 1) == Some(&b'u')
                                && bytes
                                    .get(*pos + 2..*pos + 6)
                                    .and_then(|s| std::str::from_utf8(s).ok())
                                    .and_then(|s| u16::from_str_radix(s, 16).ok())
                                    .is_some_and(|low| (0xDC00..0xE000).contains(&low));
                            if next_is_low {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                let combined = 0x10000
                                    + ((unit as u32 - 0xD800) << 10)
                                    + (low as u32 - 0xDC00);
                                char::from_u32(combined).unwrap_or('\u{FFFD}')
                            } else {
                                '\u{FFFD}'
                            }
                        } else {
                            char::from_u32(unit as u32).unwrap_or('\u{FFFD}')
                        };
                        out.push(ch);
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            // Multi-byte UTF-8 passes through: re-slice at the char
            // boundary so the String stays valid.
            _ if b < 0x80 => out.push(b as char),
            _ => {
                let start = *pos - 1;
                let len = utf8_len(b)?;
                let end = start + len;
                let slice = bytes
                    .get(start..end)
                    .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err("bad UTF-8 lead byte".to_string()),
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16, String> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
    let unit = u16::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))?;
    *pos += 4;
    Ok(unit)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at offset {start}"))
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included). Control characters use `\u00XX`; everything else passes
/// through as UTF-8.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    /// Serializes the value back to compact JSON (numbers via Rust's
    /// shortest-round-trip `{:?}` float format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let v = Json::parse(r#"{"op":"submit","job":17,"ok":true,"x":null}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("job").and_then(Json::as_u64), Some(17));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn as_u64_bound_is_strictly_below_2_pow_53() {
        // 2^53 - 1 is the largest integer every neighbor of which is
        // still exactly representable; it must be accepted.
        let max_exact = (1u64 << 53) - 1;
        let v = Json::parse(&format!("{{\"n\":{max_exact}}}")).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(max_exact));

        // At 2^53 exactness breaks down: 9007199254740993 parses to the
        // same f64 as 9007199254740992, so both must be rejected (the
        // emitter already refuses to write integers this large).
        for written in ["9007199254740992", "9007199254740993"] {
            let v = Json::parse(&format!("{{\"n\":{written}}}")).unwrap();
            assert_eq!(v.get("n").and_then(Json::as_u64), None, "{written}");
            // The value is still reachable as a float.
            assert_eq!(v.get("n").and_then(Json::as_f64), Some(2f64.powi(53)));
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let source = "line1\nline2\t\"quoted\" back\\slash \u{1F600} é";
        let literal = format!("\"{}\"", escape(source));
        let parsed = Json::parse(&literal).unwrap();
        assert_eq!(parsed.as_str(), Some(source));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap().as_str(),
            Some("Aé")
        );
        // Surrogate pair → one astral char.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
        // Lone surrogate → replacement char, not a panic.
        assert_eq!(
            Json::parse(r#""\ud83d x""#).unwrap().as_str(),
            Some("\u{FFFD} x")
        );
        // High surrogate followed by a non-low \u escape: the second
        // escape decodes on its own (and the pair arithmetic must not
        // overflow — this input used to panic debug builds).
        assert_eq!(
            Json::parse(r#""\ud800A""#).unwrap().as_str(),
            Some("\u{FFFD}A")
        );
        // Two high surrogates in a row: two replacement chars.
        assert_eq!(
            Json::parse(r#""\ud800\ud800""#).unwrap().as_str(),
            Some("\u{FFFD}\u{FFFD}")
        );
        // The escape-form crash case: the pair arithmetic must treat
        // \u0041 as its own character, never as a low surrogate.
        assert_eq!(
            Json::parse(r#""\ud800\u0041""#).unwrap().as_str(),
            Some("\u{FFFD}A")
        );
    }

    #[test]
    fn numbers_arrays_and_nesting() {
        let v = Json::parse(r#"{"a":[1, -2.5, 1e3], "b":{"c":0.125}}"#).unwrap();
        let Json::Arr(items) = v.get("a").unwrap() else {
            panic!("array expected")
        };
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Json::as_f64),
            Some(0.125)
        );
        // Non-integers and negatives are not u64s.
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,",
            "\"unterminated",
            "tru",
            "{} trailing",
            "{\"a\":1,}",
            "nan",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn nesting_is_bounded_at_max_depth() {
        // Exactly MAX_DEPTH levels parse…
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // …one more is a parse error, not a stack overflow.
        let over = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&over).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // Objects count against the same budget.
        let obj_over = format!(
            "{}0{}",
            "{\"k\":".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&obj_over).unwrap_err().contains("nesting"));
        // The attack shape: megabytes of `[` must error fast — this
        // used to recurse once per byte and kill the thread.
        let bomb = "[".repeat(4 * 1024 * 1024);
        assert!(Json::parse(&bomb).unwrap_err().contains("nesting"));
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"op":"submit","n":3,"f":0.5,"s":"a\nb","arr":[true,null]}"#;
        let v = Json::parse(text).unwrap();
        let re = Json::parse(&format!("{v}")).unwrap();
        assert_eq!(v, re);
    }
}
