//! Validates the GRAPE gradient model against finite differences — the
//! canonical correctness test for an optimal-control implementation.

use qompress_pulse::{
    evaluate, optimize, DeviceModel, GateClass, GateTarget, GrapeConfig, PiecewisePulse,
};

fn objective(device: &DeviceModel, target: &GateTarget, pulse: &PiecewisePulse) -> f64 {
    let (fid, _) = evaluate(device, target, pulse);
    1.0 - fid
}

/// Central finite-difference gradient of `1 − F` w.r.t. every amplitude.
fn numerical_gradient(
    device: &DeviceModel,
    target: &GateTarget,
    pulse: &PiecewisePulse,
    eps: f64,
) -> Vec<Vec<f64>> {
    let mut grad = vec![vec![0.0; pulse.segments()]; pulse.channels()];
    for k in 0..pulse.channels() {
        for j in 0..pulse.segments() {
            let mut plus = pulse.clone();
            plus.amps[k][j] += eps;
            let mut minus = pulse.clone();
            minus.amps[k][j] -= eps;
            grad[k][j] = (objective(device, target, &plus) - objective(device, target, &minus))
                / (2.0 * eps);
        }
    }
    grad
}

#[test]
fn gradient_descent_along_numerical_gradient_reduces_objective() {
    let device = DeviceModel::paper_single(3);
    let target = GateTarget::for_class(GateClass::X, &device);
    let pulse = PiecewisePulse {
        dt: 1.0,
        amps: vec![vec![0.05; 12], vec![-0.03; 12]],
    };
    let j0 = objective(&device, &target, &pulse);
    let grad = numerical_gradient(&device, &target, &pulse, 1e-6);
    let mut stepped = pulse.clone();
    let step = 0.02;
    for k in 0..stepped.channels() {
        for j in 0..stepped.segments() {
            stepped.amps[k][j] -= step * grad[k][j];
        }
    }
    let j1 = objective(&device, &target, &stepped);
    assert!(j1 < j0, "descent must reduce 1−F: {j0} -> {j1}");
}

#[test]
fn optimizer_matches_numerical_descent_direction() {
    // More Adam iterations of the production optimizer from a fixed seed
    // must never lose the best point found so far.
    let device = DeviceModel::paper_single(3);
    let target = GateTarget::for_class(GateClass::X, &device);
    let short = GrapeConfig {
        segments: 12,
        max_iters: 1,
        learning_rate: 0.02,
        leakage_weight: 0.0,
        target_fidelity: 0.9999,
        seed: 5,
    };
    let longer = GrapeConfig {
        max_iters: 60,
        ..short
    };
    let r1 = optimize(&device, &target, 24.0, &short, None);
    let r60 = optimize(&device, &target, 24.0, &longer, None);
    assert!(
        r60.fidelity >= r1.fidelity,
        "more iterations must not lose the best point: {} vs {}",
        r60.fidelity,
        r1.fidelity
    );
}

#[test]
fn gradient_is_small_near_an_optimum() {
    // Converge an X gate, then check the numerical gradient has shrunk
    // relative to the starting gradient (stationarity at the optimum).
    let device = DeviceModel::paper_single(2);
    let target = GateTarget::for_class(GateClass::X, &device);
    let cfg = GrapeConfig {
        segments: 12,
        max_iters: 500,
        learning_rate: 0.05,
        leakage_weight: 0.0,
        target_fidelity: 0.99999,
        seed: 3,
    };
    let start = PiecewisePulse {
        dt: 2.0,
        amps: vec![vec![0.05; 12], vec![0.0; 12]],
    };
    let res = optimize(&device, &target, 24.0, &cfg, Some(&start));
    assert!(
        res.fidelity > 0.999,
        "setup: X must converge, got {}",
        res.fidelity
    );
    let g_start = numerical_gradient(&device, &target, &start, 1e-6);
    let g_opt = numerical_gradient(&device, &target, &res.pulse, 1e-6);
    let norm = |g: &Vec<Vec<f64>>| -> f64 { g.iter().flatten().map(|x| x * x).sum::<f64>().sqrt() };
    assert!(
        norm(&g_opt) < 0.5 * norm(&g_start),
        "gradient must shrink near the optimum: {} vs {}",
        norm(&g_opt),
        norm(&g_start)
    );
}
