//! The gate library: durations and fidelities per [`GateClass`].
//!
//! [`GateLibrary::paper`] carries the shortest pulse durations the paper
//! found with Juqbox (Table 1) together with the optimization fidelity
//! targets used as success rates in the evaluation (§6.1.1): 99.9% for
//! single-qudit gates, 99% for two-qudit gates. The compiler is written
//! against this interface so that re-synthesized or measured libraries drop
//! in without code changes — the paper stresses the pipeline must adapt to
//! whatever durations a device exhibits (§3.4).

use crate::gateset::{GateClass, ALL_GATE_CLASSES};
use std::collections::BTreeMap;

/// Duration and success rate of one gate class.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GateSpec {
    /// Pulse duration in nanoseconds.
    pub duration_ns: f64,
    /// Probability the gate succeeds (the optimization fidelity target).
    pub fidelity: f64,
}

/// Mapping from gate class to timing/fidelity data.
///
/// ```
/// use qompress_pulse::{GateClass, GateLibrary};
/// let lib = GateLibrary::paper();
/// assert_eq!(lib.duration(GateClass::Cx2), 251.0);
/// assert!(lib.fidelity(GateClass::SwapIn) > lib.fidelity(GateClass::Swap2));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GateLibrary {
    specs: BTreeMap<GateClass, GateSpec>,
}

/// Fidelity target for single-qudit pulses (§6.1.1).
pub const SINGLE_UNIT_FIDELITY: f64 = 0.999;
/// Fidelity target for two-qudit pulses (§6.1.1).
pub const TWO_UNIT_FIDELITY: f64 = 0.99;

impl GateLibrary {
    /// The paper's Table 1 durations with §6.1.1 fidelities.
    pub fn paper() -> Self {
        use GateClass::*;
        let durations: &[(GateClass, f64)] = &[
            (X, 35.0),
            (X0, 87.0),
            (X1, 66.0),
            (X01, 86.0),
            (Cx0, 83.0),
            (Cx1, 84.0),
            (SwapIn, 78.0),
            (Enc, 608.0),
            // DEC is the inverse encoding pulse; the paper gives no separate
            // duration, we reuse ENC's (documented in DESIGN.md).
            (Dec, 608.0),
            (Cx2, 251.0),
            (Swap2, 504.0),
            (CxE0Bare, 560.0),
            (CxE1Bare, 632.0),
            (CxBareE0, 880.0),
            (CxBareE1, 812.0),
            (SwapBareE0, 680.0),
            (SwapBareE1, 792.0),
            (Cx00, 544.0),
            (Cx01, 544.0),
            // Table 1 note: CX10/CX11 are implemented as SWAPin + CX00 +
            // SWAPin = 78 + 544 + 78 = 700 ns.
            (Cx10, 700.0),
            (Cx11, 700.0),
            (Swap00, 916.0),
            (Swap01, 892.0),
            (Swap11, 964.0),
            (Swap4, 1184.0),
        ];
        let specs = durations
            .iter()
            .map(|&(class, duration_ns)| {
                let fidelity = if class.is_single_unit() {
                    SINGLE_UNIT_FIDELITY
                } else {
                    TWO_UNIT_FIDELITY
                };
                (
                    class,
                    GateSpec {
                        duration_ns,
                        fidelity,
                    },
                )
            })
            .collect();
        GateLibrary { specs }
    }

    /// Looks up the full spec for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class is missing from the library (libraries built via
    /// [`GateLibrary::paper`] are always complete).
    pub fn spec(&self, class: GateClass) -> GateSpec {
        *self
            .specs
            .get(&class)
            .unwrap_or_else(|| panic!("gate library missing {class}"))
    }

    /// Duration in nanoseconds.
    pub fn duration(&self, class: GateClass) -> f64 {
        self.spec(class).duration_ns
    }

    /// Success probability.
    pub fn fidelity(&self, class: GateClass) -> f64 {
        self.spec(class).fidelity
    }

    /// Replaces the spec for one class (builder-style, for sensitivity
    /// sweeps and re-synthesized libraries).
    pub fn set_spec(&mut self, class: GateClass, spec: GateSpec) -> &mut Self {
        self.specs.insert(class, spec);
        self
    }

    /// Returns a library in which the *error* of every qubit-only gate
    /// (`X`, `CX2`, `SWAP2`) is divided by `factor` — the Figure 9
    /// sensitivity sweep, where bare-qubit control improves while ququart
    /// control stays fixed.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn with_qubit_error_improved(&self, factor: f64) -> GateLibrary {
        assert!(factor >= 1.0, "improvement factor must be >= 1");
        let mut out = self.clone();
        for class in ALL_GATE_CLASSES {
            if class.is_qubit_only() {
                let spec = self.spec(class);
                let err = (1.0 - spec.fidelity) / factor;
                out.set_spec(
                    class,
                    GateSpec {
                        duration_ns: spec.duration_ns,
                        fidelity: 1.0 - err,
                    },
                );
            }
        }
        out
    }

    /// Iterates over `(class, spec)` pairs in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = (GateClass, GateSpec)> + '_ {
        ALL_GATE_CLASSES
            .iter()
            .filter_map(|&c| self.specs.get(&c).map(|&s| (c, s)))
    }
}

impl Default for GateLibrary {
    fn default() -> Self {
        GateLibrary::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateset::GateClass::*;

    #[test]
    fn paper_durations_match_table1() {
        let lib = GateLibrary::paper();
        assert_eq!(lib.duration(X), 35.0);
        assert_eq!(lib.duration(X0), 87.0);
        assert_eq!(lib.duration(X1), 66.0);
        assert_eq!(lib.duration(X01), 86.0);
        assert_eq!(lib.duration(Cx0), 83.0);
        assert_eq!(lib.duration(Cx1), 84.0);
        assert_eq!(lib.duration(SwapIn), 78.0);
        assert_eq!(lib.duration(Enc), 608.0);
        assert_eq!(lib.duration(Cx2), 251.0);
        assert_eq!(lib.duration(Swap2), 504.0);
        assert_eq!(lib.duration(CxE0Bare), 560.0);
        assert_eq!(lib.duration(CxE1Bare), 632.0);
        assert_eq!(lib.duration(CxBareE0), 880.0);
        assert_eq!(lib.duration(CxBareE1), 812.0);
        assert_eq!(lib.duration(SwapBareE0), 680.0);
        assert_eq!(lib.duration(SwapBareE1), 792.0);
        assert_eq!(lib.duration(Cx00), 544.0);
        assert_eq!(lib.duration(Cx01), 544.0);
        assert_eq!(lib.duration(Cx10), 700.0);
        assert_eq!(lib.duration(Cx11), 700.0);
        assert_eq!(lib.duration(Swap00), 916.0);
        assert_eq!(lib.duration(Swap01), 892.0);
        assert_eq!(lib.duration(Swap11), 964.0);
        assert_eq!(lib.duration(Swap4), 1184.0);
    }

    #[test]
    fn fidelity_classes() {
        let lib = GateLibrary::paper();
        assert_eq!(lib.fidelity(SwapIn), 0.999);
        assert_eq!(lib.fidelity(Cx0), 0.999);
        assert_eq!(lib.fidelity(Cx2), 0.99);
        assert_eq!(lib.fidelity(Enc), 0.99);
        assert_eq!(lib.fidelity(Swap4), 0.99);
    }

    #[test]
    fn internal_gates_beat_external_ones() {
        // The paper's headline relationship (§3.4): internal CNOT/SWAP are
        // far faster than their two-qubit counterparts.
        let lib = GateLibrary::paper();
        assert!(lib.duration(Cx0) < lib.duration(Cx2));
        assert!(lib.duration(SwapIn) < lib.duration(Swap2));
        // Bare-encoded SWAPs beat encoded-encoded SWAPs.
        assert!(lib.duration(SwapBareE0) < lib.duration(Swap00));
        assert!(lib.duration(SwapBareE1) < lib.duration(Swap11));
    }

    #[test]
    fn qubit_error_sweep_only_touches_bare_gates() {
        let base = GateLibrary::paper();
        let improved = base.with_qubit_error_improved(10.0);
        assert!((improved.fidelity(Cx2) - 0.999).abs() < 1e-12);
        assert!((improved.fidelity(X) - 0.9999).abs() < 1e-12);
        assert_eq!(improved.fidelity(Cx00), base.fidelity(Cx00));
        assert_eq!(improved.duration(Cx2), base.duration(Cx2));
    }

    #[test]
    fn iter_covers_all_classes() {
        let lib = GateLibrary::paper();
        assert_eq!(lib.iter().count(), ALL_GATE_CLASSES.len());
    }

    #[test]
    fn set_spec_overrides() {
        let mut lib = GateLibrary::paper();
        lib.set_spec(
            Cx2,
            GateSpec {
                duration_ns: 100.0,
                fidelity: 0.995,
            },
        );
        assert_eq!(lib.duration(Cx2), 100.0);
        assert_eq!(lib.fidelity(Cx2), 0.995);
    }
}
