//! The two-transmon device model of paper Eq. (3).
//!
//! We work in a frame co-rotating with transmon 1 at its 0-1 transition
//! frequency, under the rotating-wave approximation. The drift then contains
//! only the detuning of transmon 2 and both anharmonicities, and each
//! transmon is driven by two quadrature controls `I(t)(a+a†) + Q(t)·i(a†−a)`
//! — the standard reduction of the paper's lab-frame `f_k(t)(a_k + a_k†)`
//! drive. All frequencies are stored in GHz; Hamiltonians are produced in
//! angular units (rad/ns) so that `exp(-i H t[ns])` propagates directly.

use qompress_linalg::{CMat, C64};

/// Physical parameters of a single transmon.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransmonParams {
    /// 0-1 transition frequency, ω/2π in GHz.
    pub frequency_ghz: f64,
    /// Anharmonicity, ξ/2π in GHz (negative for transmons).
    pub anharmonicity_ghz: f64,
}

/// The paper's transmon 1: ω/2π = 4.914 GHz, ξ/2π = −330 MHz (§3.2).
pub const PAPER_TRANSMON_1: TransmonParams = TransmonParams {
    frequency_ghz: 4.914,
    anharmonicity_ghz: -0.330,
};

/// The paper's transmon 2: ω/2π = 5.114 GHz, ξ/2π = −330 MHz (§3.2).
pub const PAPER_TRANSMON_2: TransmonParams = TransmonParams {
    frequency_ghz: 5.114,
    anharmonicity_ghz: -0.330,
};

/// The paper's effective coupling J/2π = 3.8 MHz.
pub const PAPER_COUPLING_GHZ: f64 = 0.0038;

/// The paper's control amplitude bound f_max = 45 MHz.
pub const PAPER_MAX_AMP_GHZ: f64 = 0.045;

/// A one- or two-transmon subsystem with a fixed number of simulated levels
/// per transmon (logical levels plus guard levels).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceModel {
    transmons: Vec<TransmonParams>,
    coupling_ghz: f64,
    levels: usize,
    max_amp_ghz: f64,
}

const TWO_PI: f64 = std::f64::consts::TAU;

impl DeviceModel {
    /// Single-transmon device with the paper's transmon-1 parameters.
    ///
    /// `levels` counts simulated levels including guards (≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn paper_single(levels: usize) -> Self {
        assert!(levels >= 2);
        DeviceModel {
            transmons: vec![PAPER_TRANSMON_1],
            coupling_ghz: 0.0,
            levels,
            max_amp_ghz: PAPER_MAX_AMP_GHZ,
        }
    }

    /// Two coupled transmons with the paper's parameters (Eq. 3 values).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn paper_pair(levels: usize) -> Self {
        assert!(levels >= 2);
        DeviceModel {
            transmons: vec![PAPER_TRANSMON_1, PAPER_TRANSMON_2],
            coupling_ghz: PAPER_COUPLING_GHZ,
            levels,
            max_amp_ghz: PAPER_MAX_AMP_GHZ,
        }
    }

    /// Custom device.
    ///
    /// # Panics
    ///
    /// Panics for zero transmons, more than two, or fewer than two levels.
    pub fn new(
        transmons: Vec<TransmonParams>,
        coupling_ghz: f64,
        levels: usize,
        max_amp_ghz: f64,
    ) -> Self {
        assert!(!transmons.is_empty() && transmons.len() <= 2);
        assert!(levels >= 2);
        DeviceModel {
            transmons,
            coupling_ghz,
            levels,
            max_amp_ghz,
        }
    }

    /// Number of transmons (1 or 2).
    pub fn n_transmons(&self) -> usize {
        self.transmons.len()
    }

    /// Simulated levels per transmon.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Hilbert-space dimension (`levels^n`).
    pub fn dim(&self) -> usize {
        self.levels.pow(self.n_transmons() as u32)
    }

    /// Control amplitude bound in angular units (rad/ns).
    pub fn max_amp(&self) -> f64 {
        TWO_PI * self.max_amp_ghz
    }

    /// Basis index of the joint level `(k1, k2)` (or `(k1,)`).
    ///
    /// # Panics
    ///
    /// Panics if any level is out of range or the tuple arity mismatches.
    pub fn state_index(&self, ks: &[usize]) -> usize {
        assert_eq!(ks.len(), self.n_transmons());
        let mut idx = 0;
        for &k in ks {
            assert!(k < self.levels);
            idx = idx * self.levels + k;
        }
        idx
    }

    /// Lowering operator `a` for one transmon in its local space.
    fn lowering(&self) -> CMat {
        let d = self.levels;
        CMat::from_fn(d, d, |i, j| {
            if j == i + 1 {
                C64::real((j as f64).sqrt())
            } else {
                C64::ZERO
            }
        })
    }

    /// Lifts a local operator to the joint space at transmon `k`.
    fn lift(&self, op: &CMat, k: usize) -> CMat {
        match (self.n_transmons(), k) {
            (1, 0) => op.clone(),
            (2, 0) => op.kron(&CMat::identity(self.levels)),
            (2, 1) => CMat::identity(self.levels).kron(op),
            _ => panic!("transmon index {k} out of range"),
        }
    }

    /// The rotating-frame drift Hamiltonian in rad/ns:
    /// `Σ_k [δ_k n̂_k + (ξ_k/2) n̂_k(n̂_k−1)] + J (a₁†a₂ + a₂†a₁)`,
    /// with detunings relative to transmon 1's frequency.
    pub fn drift(&self) -> CMat {
        let d = self.levels;
        let f_ref = self.transmons[0].frequency_ghz;
        let mut h = CMat::zeros(self.dim(), self.dim());
        for (k, t) in self.transmons.iter().enumerate() {
            let delta = TWO_PI * (t.frequency_ghz - f_ref);
            let xi = TWO_PI * t.anharmonicity_ghz;
            let local = CMat::from_fn(d, d, |i, j| {
                if i == j {
                    let n = i as f64;
                    C64::real(delta * n + 0.5 * xi * n * (n - 1.0))
                } else {
                    C64::ZERO
                }
            });
            h = &h + &self.lift(&local, k);
        }
        if self.n_transmons() == 2 && self.coupling_ghz != 0.0 {
            let a = self.lowering();
            let j = TWO_PI * self.coupling_ghz;
            let a1 = self.lift(&a, 0);
            let a2 = self.lift(&a, 1);
            let coupling = &a1.dagger().mul_mat(&a2) + &a2.dagger().mul_mat(&a1);
            h = &h + &coupling.scale(C64::real(j));
        }
        h
    }

    /// Control Hamiltonians, two per transmon: `a + a†` (I quadrature) and
    /// `i(a† − a)` (Q quadrature). Coefficients supplied by the optimizer
    /// are in rad/ns and bounded by [`DeviceModel::max_amp`].
    pub fn control_ops(&self) -> Vec<CMat> {
        let a = self.lowering();
        let x_like = &a + &a.dagger();
        let y_like = &a.dagger().scale(C64::I) - &a.scale(C64::I);
        let mut out = Vec::with_capacity(2 * self.n_transmons());
        for k in 0..self.n_transmons() {
            out.push(self.lift(&x_like, k));
            out.push(self.lift(&y_like, k));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_single_dimensions() {
        let d = DeviceModel::paper_single(4);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.n_transmons(), 1);
        assert_eq!(d.control_ops().len(), 2);
    }

    #[test]
    fn paper_pair_dimensions() {
        let d = DeviceModel::paper_pair(5);
        assert_eq!(d.dim(), 25);
        assert_eq!(d.control_ops().len(), 4);
    }

    #[test]
    fn drift_is_hermitian() {
        for dev in [DeviceModel::paper_single(5), DeviceModel::paper_pair(4)] {
            assert!(dev.drift().is_hermitian(1e-12));
        }
    }

    #[test]
    fn control_ops_are_hermitian() {
        let dev = DeviceModel::paper_pair(3);
        for op in dev.control_ops() {
            assert!(op.is_hermitian(1e-12));
        }
    }

    #[test]
    fn drift_diagonal_matches_formula() {
        let dev = DeviceModel::paper_single(4);
        let h = dev.drift();
        // Transmon 1 is the frame reference: delta = 0, so level n carries
        // (xi/2) n (n-1).
        let xi = TWO_PI * (-0.330);
        for n in 0..4 {
            let want = 0.5 * xi * (n as f64) * (n as f64 - 1.0);
            assert!((h[(n, n)].re - want).abs() < 1e-12, "level {n}");
        }
    }

    #[test]
    fn pair_drift_has_detuning_on_second_transmon() {
        let dev = DeviceModel::paper_pair(3);
        let h = dev.drift();
        // State |0,1⟩ (index 1) carries delta_2 = 2π(0.2).
        let idx = dev.state_index(&[0, 1]);
        let want = TWO_PI * 0.2;
        assert!((h[(idx, idx)].re - want).abs() < 1e-9);
    }

    #[test]
    fn coupling_connects_excitation_exchange() {
        let dev = DeviceModel::paper_pair(3);
        let h = dev.drift();
        let i10 = dev.state_index(&[1, 0]);
        let i01 = dev.state_index(&[0, 1]);
        let want = TWO_PI * PAPER_COUPLING_GHZ;
        assert!((h[(i10, i01)].re - want).abs() < 1e-12);
        // Number non-conserving entries are absent under RWA.
        let i00 = dev.state_index(&[0, 0]);
        let i11 = dev.state_index(&[1, 1]);
        assert_eq!(h[(i00, i11)], C64::ZERO);
    }

    #[test]
    fn state_index_row_major() {
        let dev = DeviceModel::paper_pair(4);
        assert_eq!(dev.state_index(&[0, 0]), 0);
        assert_eq!(dev.state_index(&[0, 3]), 3);
        assert_eq!(dev.state_index(&[1, 0]), 4);
        assert_eq!(dev.state_index(&[3, 2]), 14);
    }

    #[test]
    fn max_amp_in_angular_units() {
        let dev = DeviceModel::paper_single(3);
        assert!((dev.max_amp() - TWO_PI * 0.045).abs() < 1e-12);
    }
}
