//! Target unitaries for pulse optimization, lifted into the (guarded)
//! device Hilbert space.
//!
//! Every gate in the Qompress set is a basis-state permutation of the
//! logical subspace, so a target is described by the pairing of logical
//! input states with output states. The optimizer's objective (Eq. 1) needs
//! only the matrix `A = Σ_l |out_l⟩⟨in_l|`, the logical dimension `h`, and
//! which rows count as leakage.

use crate::gateset::{one_unit_permutation, two_unit_permutation, GateClass};
use crate::transmon::DeviceModel;
use qompress_linalg::{CMat, C64};

/// A pulse-optimization target.
#[derive(Debug, Clone)]
pub struct GateTarget {
    name: String,
    objective: CMat,
    h: usize,
    input_states: Vec<usize>,
    logical_rows: Vec<usize>,
}

impl GateTarget {
    /// The gate's paper name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full-dimension objective matrix `A = Σ_l |out_l⟩⟨in_l|`.
    pub fn objective(&self) -> &CMat {
        &self.objective
    }

    /// Logical dimension `h` (number of input states).
    pub fn h(&self) -> usize {
        self.h
    }

    /// Full-space indices of the logical input states.
    pub fn input_states(&self) -> &[usize] {
        &self.input_states
    }

    /// Full-space row indices *not* counted as leakage at final time.
    pub fn logical_rows(&self) -> &[usize] {
        &self.logical_rows
    }

    /// Builds the target for `class` on `device`.
    ///
    /// Single-unit classes need a 1-transmon device, two-unit classes a
    /// 2-transmon device; ququart operands need at least 4 simulated levels.
    ///
    /// # Panics
    ///
    /// Panics on an arity mismatch between class and device, or when the
    /// device has too few levels for the class's logical states.
    pub fn for_class(class: GateClass, device: &DeviceModel) -> GateTarget {
        match class {
            GateClass::X | GateClass::X0 | GateClass::X1 | GateClass::X01 => {
                Self::single_unit_x_family(class, device)
            }
            GateClass::Cx0 | GateClass::Cx1 | GateClass::SwapIn => {
                Self::single_unit_permutation(class, device)
            }
            _ => Self::two_unit(class, device),
        }
    }

    fn single_unit_x_family(class: GateClass, device: &DeviceModel) -> GateTarget {
        assert_eq!(device.n_transmons(), 1, "{class} is a single-unit gate");
        // All X-family members are permutations of levels.
        let pairs: Vec<(usize, usize)> = match class {
            GateClass::X => vec![(0, 1), (1, 0)],
            GateClass::X0 => vec![(0, 2), (1, 3), (2, 0), (3, 1)],
            GateClass::X1 => vec![(0, 1), (1, 0), (2, 3), (3, 2)],
            GateClass::X01 => vec![(0, 3), (1, 2), (2, 1), (3, 0)],
            _ => unreachable!(),
        };
        let need = pairs.iter().map(|&(i, o)| i.max(o)).max().unwrap() + 1;
        assert!(device.levels() >= need, "{class} needs {need} levels");
        Self::from_pairs(class, device.dim(), &pairs, need_rows(need))
    }

    fn single_unit_permutation(class: GateClass, device: &DeviceModel) -> GateTarget {
        assert_eq!(device.n_transmons(), 1, "{class} is a single-unit gate");
        assert!(device.levels() >= 4, "{class} needs 4 levels");
        let pairs: Vec<(usize, usize)> = (0..4)
            .map(|a| (a, one_unit_permutation(class, a)))
            .collect();
        Self::from_pairs(class, device.dim(), &pairs, need_rows(4))
    }

    fn two_unit(class: GateClass, device: &DeviceModel) -> GateTarget {
        assert_eq!(device.n_transmons(), 2, "{class} is a two-unit gate");
        let (dim_a, dim_b, out_rows) = two_unit_logical_shape(class);
        let l = device.levels();
        assert!(
            l >= dim_a.max(dim_b),
            "{class} needs {} levels",
            dim_a.max(dim_b)
        );
        let idx = |a: usize, b: usize| a * l + b;
        let mut pairs = Vec::new();
        for a in 0..dim_a {
            for b in 0..dim_b {
                let (x, y) = two_unit_permutation(class, a, b);
                pairs.push((idx(a, b), idx(x, y)));
            }
        }
        let logical_rows: Vec<usize> = out_rows.iter().map(|&(a, b)| idx(a, b)).collect();
        let mut t = Self::from_pairs(class, device.dim(), &pairs, logical_rows.clone());
        t.logical_rows = logical_rows;
        t
    }

    fn from_pairs(
        class: GateClass,
        dim: usize,
        pairs: &[(usize, usize)],
        logical_rows: Vec<usize>,
    ) -> GateTarget {
        let mut objective = CMat::zeros(dim, dim);
        let mut input_states = Vec::with_capacity(pairs.len());
        for &(input, output) in pairs {
            objective[(output, input)] = C64::ONE;
            input_states.push(input);
        }
        GateTarget {
            name: class.paper_name().to_string(),
            objective,
            h: pairs.len(),
            input_states,
            logical_rows,
        }
    }
}

fn need_rows(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Logical operand dimensions `(dim_a, dim_b)` and the set of output pairs
/// counted as non-leakage for a two-unit class.
fn two_unit_logical_shape(class: GateClass) -> (usize, usize, Vec<(usize, usize)>) {
    let product = |da: usize, db: usize| -> Vec<(usize, usize)> {
        (0..da).flat_map(|a| (0..db).map(move |b| (a, b))).collect()
    };
    match class {
        GateClass::Cx2 | GateClass::Swap2 => (2, 2, product(2, 2)),
        GateClass::CxE0Bare
        | GateClass::CxE1Bare
        | GateClass::CxBareE0
        | GateClass::CxBareE1
        | GateClass::SwapBareE0
        | GateClass::SwapBareE1 => (4, 2, product(4, 2)),
        GateClass::Cx00
        | GateClass::Cx01
        | GateClass::Cx10
        | GateClass::Cx11
        | GateClass::Swap00
        | GateClass::Swap01
        | GateClass::Swap11
        | GateClass::Swap4 => (4, 4, product(4, 4)),
        GateClass::Enc => (2, 2, (0..4).map(|k| (k, 0)).collect()),
        GateClass::Dec => (4, 1, product(2, 2)),
        _ => panic!("{class} is not a two-unit gate"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_target_on_guarded_transmon() {
        let dev = DeviceModel::paper_single(4);
        let t = GateTarget::for_class(GateClass::X, &dev);
        assert_eq!(t.h(), 2);
        assert_eq!(t.objective()[(1, 0)], C64::ONE);
        assert_eq!(t.objective()[(0, 1)], C64::ONE);
        assert_eq!(t.objective()[(2, 2)], C64::ZERO);
        assert_eq!(t.logical_rows(), &[0, 1]);
    }

    #[test]
    fn swap_in_target_is_x12() {
        let dev = DeviceModel::paper_single(5);
        let t = GateTarget::for_class(GateClass::SwapIn, &dev);
        assert_eq!(t.h(), 4);
        assert_eq!(t.objective()[(2, 1)], C64::ONE);
        assert_eq!(t.objective()[(1, 2)], C64::ONE);
        assert_eq!(t.objective()[(0, 0)], C64::ONE);
        assert_eq!(t.objective()[(3, 3)], C64::ONE);
    }

    #[test]
    fn cx2_target_block() {
        let dev = DeviceModel::paper_pair(3);
        let t = GateTarget::for_class(GateClass::Cx2, &dev);
        let l = dev.levels();
        assert_eq!(t.h(), 4);
        // |10⟩ -> |11⟩ and back.
        assert_eq!(t.objective()[(l + 1, l)], C64::ONE);
        assert_eq!(t.objective()[(l, l + 1)], C64::ONE);
        // |00⟩ fixed.
        assert_eq!(t.objective()[(0, 0)], C64::ONE);
    }

    #[test]
    fn cx0q_target_dimensions() {
        let dev = DeviceModel::paper_pair(5);
        let t = GateTarget::for_class(GateClass::CxE0Bare, &dev);
        assert_eq!(t.h(), 8);
        // Fig. 3(b): |3⟩|0⟩ -> |3⟩|1⟩.
        let l = dev.levels();
        assert_eq!(t.objective()[(3 * l + 1, 3 * l)], C64::ONE);
        // Logical rows: 4 x 2 states.
        assert_eq!(t.logical_rows().len(), 8);
    }

    #[test]
    fn enc_target_is_isometry_onto_ground_ancilla() {
        let dev = DeviceModel::paper_pair(4);
        let t = GateTarget::for_class(GateClass::Enc, &dev);
        let l = dev.levels();
        assert_eq!(t.h(), 4);
        // |1,0⟩ -> |2,0⟩ (Eq. 2).
        assert_eq!(t.objective()[(2 * l, l)], C64::ONE);
        // Output rows are (k, 0) only.
        assert_eq!(t.logical_rows().len(), 4);
        assert!(t.logical_rows().contains(&(3 * l)));
    }

    #[test]
    fn objective_columns_are_unit_vectors() {
        // Every target: each logical input column has exactly one 1.
        let single = DeviceModel::paper_single(5);
        let pair = DeviceModel::paper_pair(5);
        for class in crate::gateset::ALL_GATE_CLASSES {
            let dev = if class.is_single_unit() {
                &single
            } else {
                &pair
            };
            let t = GateTarget::for_class(class, dev);
            for &col in t.input_states() {
                let mut ones = 0;
                for r in 0..t.objective().rows() {
                    let v = t.objective()[(r, col)];
                    if (v - C64::ONE).abs() < 1e-12 {
                        ones += 1;
                    } else {
                        assert!(v.abs() < 1e-12);
                    }
                }
                assert_eq!(ones, 1, "{class} column {col}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "single-unit gate")]
    fn arity_mismatch_panics() {
        let dev = DeviceModel::paper_pair(4);
        GateTarget::for_class(GateClass::X0, &dev);
    }
}
