//! # qompress-pulse
//!
//! The device-physics substrate of the Qompress reproduction: the paper's
//! two-transmon Hamiltonian (Eq. 3), a GRAPE-style quantum optimal control
//! optimizer standing in for Juqbox, the incremental duration-minimization
//! search of \[39\], and the canonical [`GateLibrary`] carrying Table 1's
//! pulse durations and fidelity targets.
//!
//! The compiler consumes only [`GateClass`] and [`GateLibrary`]; the
//! optimizer exists so the library can be *re-derived* (at reduced fidelity
//! targets/iteration budgets on laptop hardware — see `EXPERIMENTS.md`).
//!
//! ```
//! use qompress_pulse::{GateClass, GateLibrary};
//!
//! let lib = GateLibrary::paper();
//! // The paper's headline relationship: internal CX is ~3x faster than CX2.
//! assert!(lib.duration(GateClass::Cx0) * 3.0 < lib.duration(GateClass::Cx2));
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the math

mod duration;
pub mod gateset;
mod grape;
mod library;
mod targets;
mod transmon;

pub use duration::{find_min_duration, DurationResult, DurationSearchConfig};
pub use gateset::{GateClass, ALL_GATE_CLASSES};
pub use grape::{evaluate, optimize, GrapeConfig, PiecewisePulse, PulseResult};
pub use library::{GateLibrary, GateSpec, SINGLE_UNIT_FIDELITY, TWO_UNIT_FIDELITY};
pub use targets::GateTarget;
pub use transmon::{
    DeviceModel, TransmonParams, PAPER_COUPLING_GHZ, PAPER_MAX_AMP_GHZ, PAPER_TRANSMON_1,
    PAPER_TRANSMON_2,
};
