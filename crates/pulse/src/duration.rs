//! Minimum-duration pulse search by incremental re-seeding.
//!
//! Implements the technique of Seifert et al. [39] that the paper uses to
//! turn Juqbox's fixed-interval optimization into a duration minimizer: run
//! GRAPE at a duration, and while it converges, shrink the interval and
//! re-seed the optimizer with the previous (resampled) solution. If the
//! starting duration fails, grow instead until the first success.

use crate::grape::{optimize, GrapeConfig, PulseResult};
use crate::targets::GateTarget;
use crate::transmon::DeviceModel;

/// Configuration of the duration search.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DurationSearchConfig {
    /// Multiplicative shrink factor per successful round (`0 < s < 1`).
    pub shrink: f64,
    /// Maximum number of shrink/grow rounds.
    pub max_rounds: usize,
    /// GRAPE settings used at every round.
    pub grape: GrapeConfig,
}

impl Default for DurationSearchConfig {
    fn default() -> Self {
        DurationSearchConfig {
            shrink: 0.85,
            max_rounds: 8,
            grape: GrapeConfig::default(),
        }
    }
}

/// Outcome of a duration search.
#[derive(Debug, Clone)]
pub struct DurationResult {
    /// Shortest duration (ns) that reached the fidelity target, if any.
    pub duration_ns: Option<f64>,
    /// The pulse found at that duration (best overall when nothing
    /// converged).
    pub best: PulseResult,
    /// Durations attempted, in order, with the fidelity reached at each.
    pub history: Vec<(f64, f64)>,
}

/// Searches for the shortest pulse duration achieving the GRAPE config's
/// fidelity target, starting from `t_init` nanoseconds.
///
/// # Panics
///
/// Panics if `t_init <= 0` or `config.shrink` is outside `(0, 1)`.
pub fn find_min_duration(
    device: &DeviceModel,
    target: &GateTarget,
    t_init: f64,
    config: &DurationSearchConfig,
) -> DurationResult {
    assert!(t_init > 0.0, "initial duration must be positive");
    assert!(
        config.shrink > 0.0 && config.shrink < 1.0,
        "shrink must be in (0, 1)"
    );

    let mut history = Vec::new();
    let mut t = t_init;
    let mut best_converged: Option<(f64, PulseResult)> = None;
    let mut best_any: Option<PulseResult> = None;
    let mut seed: Option<PulseResult> = None;

    for _ in 0..config.max_rounds {
        let res = optimize(
            device,
            target,
            t,
            &config.grape,
            seed.as_ref().map(|r| &r.pulse),
        );
        history.push((t, res.fidelity));
        let replace_any = best_any.as_ref().is_none_or(|b| res.fidelity > b.fidelity);
        if replace_any {
            best_any = Some(res.clone());
        }
        if res.converged {
            let better = best_converged.as_ref().is_none_or(|(bt, _)| t < *bt);
            if better {
                best_converged = Some((t, res.clone()));
            }
            seed = Some(res);
            t *= config.shrink;
        } else if best_converged.is_none() {
            // Never succeeded yet: grow the interval and retry cold.
            seed = None;
            t /= config.shrink;
        } else {
            // Succeeded before but this shorter interval failed: stop.
            break;
        }
    }

    match best_converged {
        Some((duration, best)) => DurationResult {
            duration_ns: Some(duration),
            best,
            history,
        },
        None => DurationResult {
            duration_ns: None,
            best: best_any.expect("at least one round ran"),
            history,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateset::GateClass;

    fn quick_cfg() -> DurationSearchConfig {
        DurationSearchConfig {
            shrink: 0.7,
            max_rounds: 4,
            grape: GrapeConfig {
                segments: 16,
                max_iters: 250,
                learning_rate: 0.05,
                leakage_weight: 0.0,
                target_fidelity: 0.99,
                seed: 5,
            },
        }
    }

    #[test]
    fn finds_x_gate_duration_on_two_level_device() {
        let dev = DeviceModel::paper_single(2);
        let target = GateTarget::for_class(GateClass::X, &dev);
        let res = find_min_duration(&dev, &target, 40.0, &quick_cfg());
        let d = res.duration_ns.expect("should converge for a plain X");
        assert!(d <= 40.0);
        assert!(res.best.fidelity >= 0.99);
        assert!(!res.history.is_empty());
    }

    #[test]
    fn history_durations_shrink_after_success() {
        let dev = DeviceModel::paper_single(2);
        let target = GateTarget::for_class(GateClass::X, &dev);
        let res = find_min_duration(&dev, &target, 40.0, &quick_cfg());
        for w in res.history.windows(2) {
            // Once converged the next attempt is strictly shorter; a grow
            // step only happens before first success.
            if w[0].1 >= 0.99 {
                assert!(w[1].0 < w[0].0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shrink must be in")]
    fn rejects_bad_shrink() {
        let dev = DeviceModel::paper_single(2);
        let target = GateTarget::for_class(GateClass::X, &dev);
        let mut cfg = quick_cfg();
        cfg.shrink = 1.5;
        find_min_duration(&dev, &target, 10.0, &cfg);
    }
}
