//! The Qompress physical gate set (paper §3.1, Figure 2).
//!
//! Every compiled operation belongs to one of these classes; the class
//! determines the pulse duration and fidelity (Table 1) and — because all
//! CX/SWAP-style members are basis-state permutations — its logical
//! semantics, which the simulator and the pulse-target builder share.
//!
//! Naming follows the paper: for partial gates the *first* operand tag names
//! the control/source. `CxE0Bare` is the paper's `CX_{0q}` (control: encoded
//! slot 0, target: bare qubit); `CxBareE0` is `CX_{q0}` (control: bare).

use core::fmt;

/// A physical operation class on one or two transmon units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateClass {
    /// Single-qubit gate on a bare qubit (all 1q unitaries share X timing).
    X,
    /// Single-qubit gate on encoded slot 0 of a ququart.
    X0,
    /// Single-qubit gate on encoded slot 1 of a ququart.
    X1,
    /// Two simultaneous single-qubit gates merged into one ququart gate.
    X01,
    /// Internal CX: control slot 0, target slot 1 (single-ququart op).
    Cx0,
    /// Internal CX: control slot 1, target slot 0 (single-ququart op).
    Cx1,
    /// Internal SWAP of the two encoded qubits (single-ququart op).
    SwapIn,
    /// Encode two bare qubits into one ququart (two-unit op).
    Enc,
    /// Decode a ququart back into two bare qubits (inverse of [`GateClass::Enc`];
    /// the FQ baseline needs it, at ENC cost — the paper gives no separate number).
    Dec,
    /// Standard CX between two bare qubits.
    Cx2,
    /// Standard SWAP between two bare qubits.
    Swap2,
    /// Partial CX, control = encoded slot 0, target = bare qubit (paper `CX0q`).
    CxE0Bare,
    /// Partial CX, control = encoded slot 1, target = bare qubit (`CX1q`).
    CxE1Bare,
    /// Partial CX, control = bare qubit, target = encoded slot 0 (`CXq0`).
    CxBareE0,
    /// Partial CX, control = bare qubit, target = encoded slot 1 (`CXq1`).
    CxBareE1,
    /// Partial SWAP, bare qubit with encoded slot 0 (`SWAPq0`).
    SwapBareE0,
    /// Partial SWAP, bare qubit with encoded slot 1 (`SWAPq1`).
    SwapBareE1,
    /// Partial CX between ququarts: control slot 0 of A, target slot 0 of B.
    Cx00,
    /// Control slot 0 of A, target slot 1 of B.
    Cx01,
    /// Control slot 1 of A, target slot 0 of B.
    Cx10,
    /// Control slot 1 of A, target slot 1 of B.
    Cx11,
    /// Partial SWAP between ququarts: slot 0 of A with slot 0 of B.
    Swap00,
    /// Slot 0 of A with slot 1 of B (≡ `SWAP10` with operands exchanged).
    Swap01,
    /// Slot 1 of A with slot 1 of B.
    Swap11,
    /// Full ququart-ququart SWAP (both slots at once).
    Swap4,
}

/// All gate classes, in Table 1 order.
pub const ALL_GATE_CLASSES: [GateClass; 25] = [
    GateClass::X,
    GateClass::X0,
    GateClass::X1,
    GateClass::X01,
    GateClass::Cx0,
    GateClass::Cx1,
    GateClass::SwapIn,
    GateClass::Enc,
    GateClass::Dec,
    GateClass::Cx2,
    GateClass::Swap2,
    GateClass::CxE0Bare,
    GateClass::CxE1Bare,
    GateClass::CxBareE0,
    GateClass::CxBareE1,
    GateClass::SwapBareE0,
    GateClass::SwapBareE1,
    GateClass::Cx00,
    GateClass::Cx01,
    GateClass::Cx10,
    GateClass::Cx11,
    GateClass::Swap00,
    GateClass::Swap01,
    GateClass::Swap11,
    GateClass::Swap4,
];

impl GateClass {
    /// Returns `true` when the gate involves a single physical unit
    /// (the paper's "qudit" column: optimized to 99.9% fidelity).
    pub fn is_single_unit(self) -> bool {
        matches!(
            self,
            GateClass::X
                | GateClass::X0
                | GateClass::X1
                | GateClass::X01
                | GateClass::Cx0
                | GateClass::Cx1
                | GateClass::SwapIn
        )
    }

    /// Returns `true` for gates that implement communication (SWAP family).
    pub fn is_swap(self) -> bool {
        matches!(
            self,
            GateClass::Swap2
                | GateClass::SwapIn
                | GateClass::SwapBareE0
                | GateClass::SwapBareE1
                | GateClass::Swap00
                | GateClass::Swap01
                | GateClass::Swap11
                | GateClass::Swap4
        )
    }

    /// Returns `true` for CX-class entangling gates.
    pub fn is_cx(self) -> bool {
        matches!(
            self,
            GateClass::Cx2
                | GateClass::Cx0
                | GateClass::Cx1
                | GateClass::CxE0Bare
                | GateClass::CxE1Bare
                | GateClass::CxBareE0
                | GateClass::CxBareE1
                | GateClass::Cx00
                | GateClass::Cx01
                | GateClass::Cx10
                | GateClass::Cx11
        )
    }

    /// Returns `true` for gates touching *only* bare qubits.
    pub fn is_qubit_only(self) -> bool {
        matches!(self, GateClass::X | GateClass::Cx2 | GateClass::Swap2)
    }

    /// Paper notation (e.g. `CX0q`, `SWAP11`).
    pub fn paper_name(self) -> &'static str {
        match self {
            GateClass::X => "X",
            GateClass::X0 => "X0",
            GateClass::X1 => "X1",
            GateClass::X01 => "X0,1",
            GateClass::Cx0 => "CX0",
            GateClass::Cx1 => "CX1",
            GateClass::SwapIn => "SWAPin",
            GateClass::Enc => "ENC",
            GateClass::Dec => "DEC",
            GateClass::Cx2 => "CX2",
            GateClass::Swap2 => "SWAP2",
            GateClass::CxE0Bare => "CX0q",
            GateClass::CxE1Bare => "CX1q",
            GateClass::CxBareE0 => "CXq0",
            GateClass::CxBareE1 => "CXq1",
            GateClass::SwapBareE0 => "SWAPq0",
            GateClass::SwapBareE1 => "SWAPq1",
            GateClass::Cx00 => "CX00",
            GateClass::Cx01 => "CX01",
            GateClass::Cx10 => "CX10",
            GateClass::Cx11 => "CX11",
            GateClass::Swap00 => "SWAP00",
            GateClass::Swap01 => "SWAP01",
            GateClass::Swap11 => "SWAP11",
            GateClass::Swap4 => "SWAP4",
        }
    }
}

impl fmt::Display for GateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_name())
    }
}

/// Splits a ququart level `a ∈ 0..4` into its encoded bits `(q0, q1)` with
/// `a = 2·q0 + q1` (the paper's encoding, Eq. 2).
#[inline]
pub fn split_level(a: usize) -> (usize, usize) {
    (a / 2, a % 2)
}

/// Inverse of [`split_level`].
#[inline]
pub fn join_level(q0: usize, q1: usize) -> usize {
    2 * q0 + q1
}

/// Basis-state permutation of a *single-unit* CX/SWAP-class gate on ququart
/// levels `0..4`.
///
/// # Panics
///
/// Panics when called for a class that is not a single-unit permutation
/// (e.g. `X`, which is not a fixed permutation, or any two-unit class).
pub fn one_unit_permutation(class: GateClass, a: usize) -> usize {
    let (q0, q1) = split_level(a);
    match class {
        GateClass::Cx0 => join_level(q0, q1 ^ q0),
        GateClass::Cx1 => join_level(q0 ^ q1, q1),
        GateClass::SwapIn => join_level(q1, q0),
        _ => panic!("{class} is not a single-unit permutation gate"),
    }
}

/// Basis-state permutation of a *two-unit* gate on the `(a, b)` pair of
/// ququart levels (`0..4` each). Bare operands only ever hold levels `{0,1}`;
/// the extension outside the logical subspace is the identity (any unitary
/// completion is acceptable, §3.1), except for `ENC`/`DEC` which use an
/// explicit bijective completion.
///
/// # Panics
///
/// Panics when called for a single-unit class.
pub fn two_unit_permutation(class: GateClass, a: usize, b: usize) -> (usize, usize) {
    let (a0, a1) = split_level(a);
    let (b0, b1) = split_level(b);
    match class {
        GateClass::Cx2 => {
            // Bare-bare: levels above 1 untouched.
            if a == 1 && b < 2 {
                (a, b ^ 1)
            } else {
                (a, b)
            }
        }
        GateClass::Swap2 => {
            if a < 2 && b < 2 {
                (b, a)
            } else {
                (a, b)
            }
        }
        GateClass::CxE0Bare => {
            if a0 == 1 && b < 2 {
                (a, b ^ 1)
            } else {
                (a, b)
            }
        }
        GateClass::CxE1Bare => {
            if a1 == 1 && b < 2 {
                (a, b ^ 1)
            } else {
                (a, b)
            }
        }
        GateClass::CxBareE0 => {
            if b == 1 {
                (join_level(a0 ^ 1, a1), b)
            } else {
                (a, b)
            }
        }
        GateClass::CxBareE1 => {
            if b == 1 {
                (join_level(a0, a1 ^ 1), b)
            } else {
                (a, b)
            }
        }
        GateClass::SwapBareE0 => {
            // Exchange bare qubit b with encoded q0 of a.
            if b < 2 {
                (join_level(b, a1), a0)
            } else {
                (a, b)
            }
        }
        GateClass::SwapBareE1 => {
            if b < 2 {
                (join_level(a0, b), a1)
            } else {
                (a, b)
            }
        }
        GateClass::Cx00 => {
            if a0 == 1 {
                (a, join_level(b0 ^ 1, b1))
            } else {
                (a, b)
            }
        }
        GateClass::Cx01 => {
            if a0 == 1 {
                (a, join_level(b0, b1 ^ 1))
            } else {
                (a, b)
            }
        }
        GateClass::Cx10 => {
            if a1 == 1 {
                (a, join_level(b0 ^ 1, b1))
            } else {
                (a, b)
            }
        }
        GateClass::Cx11 => {
            if a1 == 1 {
                (a, join_level(b0, b1 ^ 1))
            } else {
                (a, b)
            }
        }
        GateClass::Swap00 => (join_level(b0, a1), join_level(a0, b1)),
        GateClass::Swap01 => (join_level(b1, a1), join_level(b0, a0)),
        GateClass::Swap11 => (join_level(a0, b1), join_level(b0, a1)),
        GateClass::Swap4 => (b, a),
        GateClass::Enc => enc_permutation(a, b),
        GateClass::Dec => dec_permutation(a, b),
        _ => panic!("{class} is not a two-unit permutation gate"),
    }
}

/// Encode: `|q0⟩|q1⟩ → |2·q0+q1⟩|0⟩` on the logical inputs, completed to a
/// bijection on the full 16-state space.
fn enc_permutation(a: usize, b: usize) -> (usize, usize) {
    // Logical inputs occupy a,b ∈ {0,1}; outputs occupy (k, 0).
    // Completion: pair the remaining 12 inputs with the remaining 12
    // outputs in lexicographic order.
    let logical_in = |a: usize, b: usize| a < 2 && b < 2;
    if logical_in(a, b) {
        return (join_level(a, b), 0);
    }
    // Remaining inputs sorted lexicographically.
    let rest_in: Vec<(usize, usize)> = all_pairs().filter(|&(x, y)| !logical_in(x, y)).collect();
    // Logical outputs occupy exactly the pairs with second unit in |0⟩.
    let rest_out: Vec<(usize, usize)> = all_pairs().filter(|&(_, y)| y != 0).collect();
    let pos = rest_in.iter().position(|&p| p == (a, b)).unwrap();
    rest_out[pos]
}

fn dec_permutation(a: usize, b: usize) -> (usize, usize) {
    // Inverse of enc: find the input mapping to (a, b).
    all_pairs()
        .find(|&(x, y)| enc_permutation(x, y) == (a, b))
        .expect("enc is a bijection")
}

fn all_pairs() -> impl Iterator<Item = (usize, usize)> {
    (0..4).flat_map(|a| (0..4).map(move |b| (a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_bijection_two_unit(class: GateClass) -> bool {
        let mut seen = [false; 16];
        for (a, b) in all_pairs() {
            let (x, y) = two_unit_permutation(class, a, b);
            let idx = x * 4 + y;
            if seen[idx] {
                return false;
            }
            seen[idx] = true;
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn all_two_unit_perm_gates_are_bijections() {
        for class in [
            GateClass::Cx2,
            GateClass::Swap2,
            GateClass::CxE0Bare,
            GateClass::CxE1Bare,
            GateClass::CxBareE0,
            GateClass::CxBareE1,
            GateClass::SwapBareE0,
            GateClass::SwapBareE1,
            GateClass::Cx00,
            GateClass::Cx01,
            GateClass::Cx10,
            GateClass::Cx11,
            GateClass::Swap00,
            GateClass::Swap01,
            GateClass::Swap11,
            GateClass::Swap4,
            GateClass::Enc,
            GateClass::Dec,
        ] {
            assert!(is_bijection_two_unit(class), "{class} is not a bijection");
        }
    }

    #[test]
    fn internal_gates_match_paper() {
        // SWAPin = X12: exchanges levels 1 and 2 (paper §3.1.1).
        assert_eq!(one_unit_permutation(GateClass::SwapIn, 1), 2);
        assert_eq!(one_unit_permutation(GateClass::SwapIn, 2), 1);
        assert_eq!(one_unit_permutation(GateClass::SwapIn, 0), 0);
        assert_eq!(one_unit_permutation(GateClass::SwapIn, 3), 3);
        // CX0 (control q0): swaps |2⟩↔|3⟩.
        assert_eq!(one_unit_permutation(GateClass::Cx0, 2), 3);
        assert_eq!(one_unit_permutation(GateClass::Cx0, 3), 2);
        assert_eq!(one_unit_permutation(GateClass::Cx0, 0), 0);
        // CX1 (control q1): swaps |1⟩↔|3⟩.
        assert_eq!(one_unit_permutation(GateClass::Cx1, 1), 3);
        assert_eq!(one_unit_permutation(GateClass::Cx1, 3), 1);
    }

    #[test]
    fn enc_matches_eq2() {
        assert_eq!(two_unit_permutation(GateClass::Enc, 0, 0), (0, 0));
        assert_eq!(two_unit_permutation(GateClass::Enc, 0, 1), (1, 0));
        assert_eq!(two_unit_permutation(GateClass::Enc, 1, 0), (2, 0));
        assert_eq!(two_unit_permutation(GateClass::Enc, 1, 1), (3, 0));
    }

    #[test]
    fn dec_inverts_enc() {
        for (a, b) in all_pairs() {
            let (x, y) = two_unit_permutation(GateClass::Enc, a, b);
            assert_eq!(two_unit_permutation(GateClass::Dec, x, y), (a, b));
        }
    }

    #[test]
    fn cx0q_controls_on_high_bit() {
        // Ququart |3⟩ = encoded |11⟩ controls (q0 = 1): bare target flips (Fig. 3).
        assert_eq!(two_unit_permutation(GateClass::CxE0Bare, 3, 0), (3, 1));
        assert_eq!(two_unit_permutation(GateClass::CxE0Bare, 2, 0), (2, 1));
        assert_eq!(two_unit_permutation(GateClass::CxE0Bare, 1, 0), (1, 0));
        assert_eq!(two_unit_permutation(GateClass::CxE0Bare, 0, 1), (0, 1));
    }

    #[test]
    fn cxq0_targets_high_bit() {
        assert_eq!(two_unit_permutation(GateClass::CxBareE0, 0, 1), (2, 1));
        assert_eq!(two_unit_permutation(GateClass::CxBareE0, 2, 1), (0, 1));
        assert_eq!(two_unit_permutation(GateClass::CxBareE0, 1, 0), (1, 0));
    }

    #[test]
    fn swap_bare_e0_exchanges_states() {
        // a = |q0 q1⟩ = |10⟩ = 2, b = |1⟩: swap q0 <-> b gives a = |11⟩ = 3, b = 0... wait:
        // (join(b, a1), a0) = (join(1, 0), 1) = (2, 1)? b=1, a=2=(1,0): out a=(1,0)->(b=1,a1=0)=2, out b=a0=1.
        // Self-inverse check instead:
        for (a, b) in all_pairs() {
            if b < 2 {
                let (x, y) = two_unit_permutation(GateClass::SwapBareE0, a, b);
                let (x2, y2) = two_unit_permutation(GateClass::SwapBareE0, x, y);
                assert_eq!((x2, y2), (a, b), "SWAPq0 must be an involution");
            }
        }
        // Concrete: a=|01⟩=1 (q0=0,q1=1), b=|1⟩: q0 <-> b: a becomes |11⟩=3, b=0.
        assert_eq!(two_unit_permutation(GateClass::SwapBareE0, 1, 1), (3, 0));
    }

    #[test]
    fn swap00_only_touches_high_bits() {
        // a=(1,1)=3, b=(0,1)=1: swap q0s -> a=(0,1)=1, b=(1,1)=3.
        assert_eq!(two_unit_permutation(GateClass::Swap00, 3, 1), (1, 3));
        // Fixed point when bits equal.
        assert_eq!(two_unit_permutation(GateClass::Swap00, 2, 2), (2, 2));
    }

    #[test]
    fn swap4_is_full_exchange() {
        assert_eq!(two_unit_permutation(GateClass::Swap4, 3, 1), (1, 3));
        assert_eq!(two_unit_permutation(GateClass::Swap4, 2, 0), (0, 2));
    }

    #[test]
    fn swap_variants_are_involutions() {
        for class in [
            GateClass::Swap00,
            GateClass::Swap01,
            GateClass::Swap11,
            GateClass::Swap4,
        ] {
            for (a, b) in all_pairs() {
                let (x, y) = two_unit_permutation(class, a, b);
                assert_eq!(two_unit_permutation(class, x, y), (a, b), "{class}");
            }
        }
    }

    #[test]
    fn classification_predicates() {
        assert!(GateClass::SwapIn.is_single_unit());
        assert!(!GateClass::Enc.is_single_unit());
        assert!(GateClass::Swap4.is_swap());
        assert!(GateClass::Cx00.is_cx());
        assert!(GateClass::Cx2.is_qubit_only());
        assert!(!GateClass::Cx00.is_qubit_only());
    }

    #[test]
    fn paper_names_cover_all() {
        for c in ALL_GATE_CLASSES {
            assert!(!c.paper_name().is_empty());
        }
        assert_eq!(GateClass::CxE0Bare.paper_name(), "CX0q");
        assert_eq!(GateClass::CxBareE1.paper_name(), "CXq1");
    }
}
