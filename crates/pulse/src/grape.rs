//! GRAPE-style piecewise-constant pulse optimization.
//!
//! Minimizes `J = 1 − F + λ·Leak` (the paper's Eq. 1 objective with a
//! guard-state leakage penalty) over piecewise-constant control amplitudes,
//! using the standard first-order gradient of the segment propagators and an
//! Adam update with amplitude clamping at the device's `f_max`.

use crate::targets::GateTarget;
use crate::transmon::DeviceModel;
use qompress_linalg::{expm, CMat, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A piecewise-constant pulse: one amplitude per `(channel, segment)`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PiecewisePulse {
    /// Segment length in nanoseconds.
    pub dt: f64,
    /// `amps[channel][segment]`, rad/ns.
    pub amps: Vec<Vec<f64>>,
}

impl PiecewisePulse {
    /// Total pulse duration in nanoseconds.
    pub fn duration(&self) -> f64 {
        self.dt * self.segments() as f64
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.amps.first().map_or(0, |c| c.len())
    }

    /// Number of control channels.
    pub fn channels(&self) -> usize {
        self.amps.len()
    }

    /// The full propagator of this pulse on `device`.
    pub fn propagator(&self, device: &DeviceModel) -> CMat {
        let drift = device.drift();
        let controls = device.control_ops();
        let mut u = CMat::identity(device.dim());
        for j in 0..self.segments() {
            let u_j = segment_propagator(&drift, &controls, self, j);
            u = u_j.mul_mat(&u);
        }
        u
    }

    /// Evolves `psi0` under the pulse, sampling the state after every
    /// segment; returns `(time_ns, state)` pairs including `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `psi0` has the wrong dimension.
    pub fn evolve_state(&self, device: &DeviceModel, psi0: &[C64]) -> Vec<(f64, Vec<C64>)> {
        assert_eq!(psi0.len(), device.dim());
        let drift = device.drift();
        let controls = device.control_ops();
        let mut out = vec![(0.0, psi0.to_vec())];
        let mut psi = psi0.to_vec();
        for j in 0..self.segments() {
            let u_j = segment_propagator(&drift, &controls, self, j);
            psi = u_j.mul_vec(&psi);
            out.push(((j + 1) as f64 * self.dt, psi.clone()));
        }
        out
    }

    /// Resamples the pulse onto a new segment grid of the same channel
    /// count, stretching/compressing in time (used by the duration search to
    /// re-seed shorter pulses from longer solutions).
    pub fn resampled(&self, new_segments: usize, new_dt: f64) -> PiecewisePulse {
        let old_n = self.segments();
        let amps = self
            .amps
            .iter()
            .map(|chan| {
                (0..new_segments)
                    .map(|j| {
                        if old_n == 0 {
                            0.0
                        } else {
                            let pos = j as f64 / new_segments as f64 * old_n as f64;
                            chan[(pos.floor() as usize).min(old_n - 1)]
                        }
                    })
                    .collect()
            })
            .collect();
        PiecewisePulse { dt: new_dt, amps }
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrapeConfig {
    /// Number of piecewise-constant segments.
    pub segments: usize,
    /// Maximum Adam iterations.
    pub max_iters: usize,
    /// Adam learning rate (rad/ns per step).
    pub learning_rate: f64,
    /// Weight λ of the leakage penalty.
    pub leakage_weight: f64,
    /// Stop early when this fidelity is reached.
    pub target_fidelity: f64,
    /// RNG seed for the initial guess.
    pub seed: u64,
}

impl Default for GrapeConfig {
    fn default() -> Self {
        GrapeConfig {
            segments: 40,
            max_iters: 300,
            learning_rate: 0.01,
            leakage_weight: 1.0,
            target_fidelity: 0.999,
            seed: 7,
        }
    }
}

/// Result of one optimization run.
#[derive(Debug, Clone)]
pub struct PulseResult {
    /// The optimized pulse.
    pub pulse: PiecewisePulse,
    /// Achieved gate fidelity `F` (Eq. 1).
    pub fidelity: f64,
    /// Final-time guard-state leakage (mean over logical inputs).
    pub leakage: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether `target_fidelity` was reached.
    pub converged: bool,
}

/// Evaluates the fidelity `F = |Tr(A† U)|² / h²` and leakage of a pulse.
pub fn evaluate(device: &DeviceModel, target: &GateTarget, pulse: &PiecewisePulse) -> (f64, f64) {
    let u = pulse.propagator(device);
    fidelity_and_leakage(&u, target)
}

fn fidelity_and_leakage(u: &CMat, target: &GateTarget) -> (f64, f64) {
    let g = target.objective().dagger().mul_mat(u).trace();
    let h = target.h() as f64;
    let fid = g.norm_sqr() / (h * h);
    let mut leak = 0.0;
    let logical: std::collections::HashSet<usize> = target.logical_rows().iter().copied().collect();
    for &col in target.input_states() {
        for row in 0..u.rows() {
            if !logical.contains(&row) {
                leak += u[(row, col)].norm_sqr();
            }
        }
    }
    (fid, leak / h)
}

fn segment_propagator(drift: &CMat, controls: &[CMat], pulse: &PiecewisePulse, j: usize) -> CMat {
    let mut h = drift.clone();
    for (k, op) in controls.iter().enumerate() {
        let a = pulse.amps[k][j];
        if a != 0.0 {
            h = &h + &op.scale(C64::real(a));
        }
    }
    expm(&h.scale(C64::new(0.0, -pulse.dt)))
}

/// Runs GRAPE on `device` toward `target` for a pulse of the given duration.
///
/// The initial guess is a small random pulse (deterministic in
/// `config.seed`); pass `seed_pulse` to warm-start from a previous solution
/// instead.
///
/// # Panics
///
/// Panics if `duration_ns <= 0` or `config.segments == 0`.
pub fn optimize(
    device: &DeviceModel,
    target: &GateTarget,
    duration_ns: f64,
    config: &GrapeConfig,
    seed_pulse: Option<&PiecewisePulse>,
) -> PulseResult {
    assert!(duration_ns > 0.0 && config.segments > 0);
    let n = config.segments;
    let dt = duration_ns / n as f64;
    let n_channels = 2 * device.n_transmons();
    let max_amp = device.max_amp();

    let mut pulse = match seed_pulse {
        Some(p) => {
            let mut q = p.resampled(n, dt);
            for chan in &mut q.amps {
                for a in chan.iter_mut() {
                    *a = a.clamp(-max_amp, max_amp);
                }
            }
            q
        }
        None => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let amps = (0..n_channels)
                .map(|_| (0..n).map(|_| rng.gen_range(-0.2..0.2) * max_amp).collect())
                .collect();
            PiecewisePulse { dt, amps }
        }
    };

    let drift = device.drift();
    let controls = device.control_ops();
    let h = target.h() as f64;
    let dim = device.dim();
    let logical: std::collections::HashSet<usize> = target.logical_rows().iter().copied().collect();
    let input_set: std::collections::HashSet<usize> =
        target.input_states().iter().copied().collect();

    // Adam state.
    let mut m = vec![vec![0.0; n]; n_channels];
    let mut v = vec![vec![0.0; n]; n_channels];
    let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

    let mut best = pulse.clone();
    let mut best_fid = -1.0;
    let mut best_leak = 1.0;
    let mut iterations = 0;

    for iter in 1..=config.max_iters {
        iterations = iter;
        // Forward pass: segment propagators and cumulative products.
        let mut segs = Vec::with_capacity(n);
        for j in 0..n {
            segs.push(segment_propagator(&drift, &controls, &pulse, j));
        }
        // forward[j] = U_j ... U_1 (forward[0] = U_1).
        let mut forward = Vec::with_capacity(n);
        let mut acc = CMat::identity(dim);
        for seg in segs.iter() {
            acc = seg.mul_mat(&acc);
            forward.push(acc.clone());
        }
        let u_total = forward[n - 1].clone();

        let g_trace = target.objective().dagger().mul_mat(&u_total).trace();
        let fid = g_trace.norm_sqr() / (h * h);
        let (_, leak) = fidelity_and_leakage(&u_total, target);

        if fid > best_fid {
            best_fid = fid;
            best_leak = leak;
            best = pulse.clone();
        }
        if fid >= config.target_fidelity {
            return PulseResult {
                pulse: best,
                fidelity: best_fid,
                leakage: best_leak,
                iterations,
                converged: true,
            };
        }

        // Effective adjoint matrix B = -B_fid + λ B_leak with
        //   B_fid  = (2/h²) G · A
        //   B_leak = (2/h) (guard-mask ∘ U).
        let mut b = target.objective().scale(C64::new(
            -2.0 * g_trace.re / (h * h),
            -2.0 * g_trace.im / (h * h),
        ));
        if config.leakage_weight > 0.0 {
            let scale = 2.0 * config.leakage_weight / h;
            let mut b_leak = CMat::zeros(dim, dim);
            for &col in &input_set {
                for row in 0..dim {
                    if !logical.contains(&row) {
                        b_leak[(row, col)] = u_total[(row, col)].scale(scale);
                    }
                }
            }
            b = &b + &b_leak;
        }

        // Backward pass: Q_j = U_N ... U_{j+1}; gradient via
        // Y_j = P_j B† Q_j, dJ/dθ_kj = Re[-i dt Tr(Y_j H_k)].
        let b_dag = b.dagger();
        let mut q = CMat::identity(dim);
        let mut grads = vec![vec![0.0; n]; n_channels];
        for j in (0..n).rev() {
            // Y_j = P_j · B† · Q_j.
            let y = forward[j].mul_mat(&b_dag).mul_mat(&q);
            for (k, hk) in controls.iter().enumerate() {
                // Tr(Y H_k)
                let mut tr = C64::ZERO;
                for r in 0..dim {
                    for c in 0..dim {
                        let hv = hk[(c, r)];
                        if hv != C64::ZERO {
                            tr += y[(r, c)] * hv;
                        }
                    }
                }
                let dj = (C64::new(0.0, -pulse.dt) * tr).re;
                grads[k][j] = dj;
            }
            q = q.mul_mat(&segs[j]);
        }

        // Adam step with amplitude clamping.
        let bc1 = 1.0 - beta1.powi(iter as i32);
        let bc2 = 1.0 - beta2.powi(iter as i32);
        for k in 0..n_channels {
            for j in 0..n {
                let g = grads[k][j];
                m[k][j] = beta1 * m[k][j] + (1.0 - beta1) * g;
                v[k][j] = beta2 * v[k][j] + (1.0 - beta2) * g * g;
                let mh = m[k][j] / bc1;
                let vh = v[k][j] / bc2;
                let step = config.learning_rate * max_amp * mh / (vh.sqrt() + eps);
                pulse.amps[k][j] = (pulse.amps[k][j] - step).clamp(-max_amp, max_amp);
            }
        }
    }

    PulseResult {
        pulse: best,
        fidelity: best_fid,
        leakage: best_leak,
        iterations,
        converged: best_fid >= config.target_fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateset::GateClass;

    #[test]
    fn propagator_is_unitary() {
        let dev = DeviceModel::paper_single(3);
        let pulse = PiecewisePulse {
            dt: 0.5,
            amps: vec![vec![0.1; 10], vec![-0.05; 10]],
        };
        assert!(pulse.propagator(&dev).is_unitary(1e-8));
    }

    #[test]
    fn zero_pulse_on_driftless_qubit_is_identity() {
        // Two-level transmon: anharmonicity acts only on level 2+, and the
        // frame removes the qubit frequency, so the drift vanishes.
        let dev = DeviceModel::paper_single(2);
        let pulse = PiecewisePulse {
            dt: 1.0,
            amps: vec![vec![0.0; 5], vec![0.0; 5]],
        };
        assert!(pulse.propagator(&dev).is_identity(1e-9));
    }

    #[test]
    fn resample_preserves_channel_count() {
        let pulse = PiecewisePulse {
            dt: 1.0,
            amps: vec![vec![1.0, 2.0, 3.0, 4.0]; 2],
        };
        let r = pulse.resampled(8, 0.5);
        assert_eq!(r.channels(), 2);
        assert_eq!(r.segments(), 8);
        assert_eq!(r.amps[0][0], 1.0);
        assert_eq!(r.amps[0][7], 4.0);
        assert!((r.duration() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_pi_pulse_flips_qubit() {
        // Constant drive u on (a+a†) for time t rotates |0⟩→|1⟩ when
        // u·t = π/2 (two-level device).
        let dev = DeviceModel::paper_single(2);
        let u_amp = dev.max_amp() / 2.0;
        let t = std::f64::consts::FRAC_PI_2 / u_amp;
        let n = 20;
        let pulse = PiecewisePulse {
            dt: t / n as f64,
            amps: vec![vec![u_amp; n], vec![0.0; n]],
        };
        let u = pulse.propagator(&dev);
        // |U_{10}|² ≈ 1.
        assert!((u[(1, 0)].norm_sqr() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn evaluate_perfect_x_gate() {
        let dev = DeviceModel::paper_single(2);
        let target = GateTarget::for_class(GateClass::X, &dev);
        let u_amp = dev.max_amp() / 2.0;
        let t = std::f64::consts::FRAC_PI_2 / u_amp;
        let n = 40;
        let pulse = PiecewisePulse {
            dt: t / n as f64,
            amps: vec![vec![u_amp; n], vec![0.0; n]],
        };
        let (fid, leak) = evaluate(&dev, &target, &pulse);
        assert!(fid > 0.999, "fid = {fid}");
        assert!(leak < 1e-9);
    }

    #[test]
    fn grape_reaches_x_gate_on_two_level_device() {
        let dev = DeviceModel::paper_single(2);
        let target = GateTarget::for_class(GateClass::X, &dev);
        let cfg = GrapeConfig {
            segments: 16,
            max_iters: 400,
            learning_rate: 0.05,
            leakage_weight: 0.0,
            target_fidelity: 0.995,
            seed: 3,
        };
        let res = optimize(&dev, &target, 30.0, &cfg, None);
        assert!(
            res.converged,
            "fidelity only reached {:.4} after {} iters",
            res.fidelity, res.iterations
        );
    }

    #[test]
    fn grape_improves_from_random_start() {
        // On a guarded 3-level device, a modest iteration budget must still
        // strictly improve fidelity over the initial guess.
        let dev = DeviceModel::paper_single(3);
        let target = GateTarget::for_class(GateClass::X, &dev);
        let cfg = GrapeConfig {
            segments: 20,
            max_iters: 5,
            learning_rate: 0.05,
            leakage_weight: 1.0,
            target_fidelity: 0.9999,
            seed: 11,
        };
        let first = optimize(&dev, &target, 35.0, &cfg, None);
        let cfg_more = GrapeConfig {
            max_iters: 120,
            ..cfg
        };
        let more = optimize(&dev, &target, 35.0, &cfg_more, None);
        assert!(more.fidelity > first.fidelity);
        assert!(more.fidelity > 0.5, "got {}", more.fidelity);
    }

    #[test]
    fn evolve_state_samples_every_segment() {
        let dev = DeviceModel::paper_single(2);
        let pulse = PiecewisePulse {
            dt: 1.0,
            amps: vec![vec![0.05; 4], vec![0.0; 4]],
        };
        let psi0 = qompress_linalg::basis_state(2, 0);
        let traj = pulse.evolve_state(&dev, &psi0);
        assert_eq!(traj.len(), 5);
        assert!((traj[4].0 - 4.0).abs() < 1e-12);
        // Norm conserved.
        for (_, psi) in &traj {
            assert!((qompress_linalg::norm_sqr(psi) - 1.0).abs() < 1e-9);
        }
    }
}
