//! Metric-model integration tests: T1 sweeps, crossover behaviour and the
//! error-sensitivity mechanics behind Figures 9-12.

use qompress::{coherence_eps, compile, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_workloads::{build, Benchmark};

fn paper_pair(
    bench: Benchmark,
    size: usize,
) -> (qompress::CompilationResult, qompress::CompilationResult) {
    let circuit = build(bench, size, 5);
    let topo = Topology::grid(size);
    let config = CompilerConfig::paper();
    let qo = compile(&circuit, &topo, Strategy::QubitOnly, &config);
    let eqm = compile(&circuit, &topo, Strategy::Eqm, &config);
    (qo, eqm)
}

#[test]
fn coherence_improves_with_better_t1() {
    // Figure 11: 10x better T1 lifts coherence EPS for both.
    let (qo, eqm) = paper_pair(Benchmark::Cuccaro, 12);
    let config = CompilerConfig::paper();
    for r in [&qo, &eqm] {
        let base = r.metrics.coherence_eps;
        let better = r
            .metrics
            .with_t1(config.t1_qubit_ns() * 10.0, config.t1_ququart_ns() * 10.0);
        assert!(better.coherence_eps > base);
        assert_eq!(better.gate_eps, r.metrics.gate_eps);
    }
}

#[test]
fn t1_ratio_sweep_is_monotone() {
    // Figure 12: improving the ququart T1 ratio monotonically improves a
    // compressed circuit's total EPS while leaving qubit-only untouched.
    let (qo, eqm) = paper_pair(Benchmark::Cnu, 15);
    let config = CompilerConfig::paper();
    let t1q = config.t1_qubit_ns();
    let mut last = 0.0;
    for ratio in [3.0, 2.5, 2.0, 1.5, 1.0] {
        let swept = eqm.metrics.with_t1(t1q, t1q / ratio);
        assert!(swept.total_eps >= last, "ratio {ratio}");
        last = swept.total_eps;
        // Qubit-only has zero ququart residency: ratio is irrelevant.
        let qo_swept = qo.metrics.with_t1(t1q, t1q / ratio);
        assert!((qo_swept.total_eps - qo.metrics.total_eps).abs() < 1e-12);
    }
}

#[test]
fn crossover_exists_when_gate_gains_are_real() {
    // Figure 12's dashed lines: at 10x better T1 (the figure's setting),
    // if compression improves gate EPS there is a ququart T1 ratio at or
    // below parity where total EPS favors ququarts.
    let (qo, eqm) = paper_pair(Benchmark::Cnu, 15);
    if eqm.metrics.gate_eps <= qo.metrics.gate_eps {
        // Nothing to show for this size; the premise fails.
        return;
    }
    let config = CompilerConfig::paper();
    let t1q = 10.0 * config.t1_qubit_ns();
    let qo_10x = qo.metrics.with_t1(t1q, t1q / 3.0);
    let at_parity = eqm.metrics.with_t1(t1q, t1q);
    assert!(
        at_parity.total_eps > qo_10x.total_eps,
        "at 10x T1 and ratio parity the gate-EPS advantage must win: {} vs {}",
        at_parity.total_eps,
        qo_10x.total_eps
    );
    // And at the paper's worst-case ratio 3 the compressed circuit loses
    // on coherence (the §7.1 finding).
    let at_worst = eqm.metrics.with_t1(t1q, t1q / 3.0);
    assert!(at_worst.coherence_eps < qo_10x.coherence_eps);
}

#[test]
fn qubit_error_improvement_shrinks_compression_advantage() {
    // Figure 9: as bare-qubit gates get better, the ququart advantage
    // diminishes.
    let circuit = build(Benchmark::Cuccaro, 12, 5);
    let topo = Topology::grid(12);
    let base_cfg = CompilerConfig::paper();
    let better_cfg = base_cfg.with_library(base_cfg.library.with_qubit_error_improved(10.0));

    let qo_base = compile(&circuit, &topo, Strategy::QubitOnly, &base_cfg);
    let eqm_base = compile(&circuit, &topo, Strategy::Eqm, &base_cfg);
    let qo_better = compile(&circuit, &topo, Strategy::QubitOnly, &better_cfg);
    let eqm_better = compile(&circuit, &topo, Strategy::Eqm, &better_cfg);

    let adv_base = eqm_base.metrics.gate_eps / qo_base.metrics.gate_eps;
    let adv_better = eqm_better.metrics.gate_eps / qo_better.metrics.gate_eps;
    assert!(
        adv_better < adv_base,
        "advantage should shrink: {adv_base:.4} -> {adv_better:.4}"
    );
    // And qubit-only itself must improve.
    assert!(qo_better.metrics.gate_eps > qo_base.metrics.gate_eps);
}

#[test]
fn coherence_formula_matches_closed_form() {
    let (qo, _) = paper_pair(Benchmark::Bv, 10);
    let config = CompilerConfig::paper();
    let expect = coherence_eps(
        qo.metrics.qubit_state_ns,
        qo.metrics.ququart_state_ns,
        config.t1_qubit_ns(),
        config.t1_ququart_ns(),
    );
    assert!((qo.metrics.coherence_eps - expect).abs() < 1e-12);
}

#[test]
fn total_eps_is_product_of_components() {
    let (_, eqm) = paper_pair(Benchmark::QaoaCylinder, 12);
    let m = &eqm.metrics;
    assert!((m.total_eps - m.gate_eps * m.coherence_eps).abs() < 1e-12);
}

#[test]
fn compressed_circuits_accumulate_ququart_residency() {
    let (qo, eqm) = paper_pair(Benchmark::Cnu, 15);
    assert_eq!(qo.metrics.ququart_state_ns, 0.0);
    assert!(eqm.metrics.ququart_state_ns > 0.0);
}

#[test]
fn duration_equals_last_op_end() {
    let (qo, _) = paper_pair(Benchmark::Cuccaro, 10);
    let max_end = qo
        .schedule
        .ops()
        .iter()
        .map(|o| o.end_ns())
        .fold(0.0f64, f64::max);
    assert!((qo.metrics.duration_ns - max_end).abs() < 1e-9);
}
