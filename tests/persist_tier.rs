//! Session-level behaviour of the persistent cache tier: a restarted
//! process serves previously compiled circuits as disk hits (byte
//! identical), corruption degrades to a recompile, sessions share one
//! directory safely, and the wire `stats` op reports the tier split.

use qompress::{CompilationResult, Compiler, Strategy};
use qompress_arch::Topology;
use qompress_service::{loopback, serve_duplex, ServiceClient};
use qompress_workloads::random_circuit;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A per-test directory under the Cargo-managed tmp root (inside
/// `target/`), recreated empty so reruns start clean.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear test dir");
    }
    dir
}

/// Renders every observable field, so "byte-identical across restarts"
/// is a literal string comparison.
fn render(r: &CompilationResult) -> String {
    format!(
        "{}\nmetrics: {:?}\nschedule: {:?}\nplacements: {:?} -> {:?}\nencoded: {:?}\npairs: {:?}\ngates: {}\ntrace: {:?}\n",
        r.strategy,
        r.metrics,
        r.schedule,
        r.initial_placements,
        r.final_placements,
        r.encoded_units,
        r.pairs,
        r.logical_gates,
        r.trace,
    )
}

/// The lone `.bin` entry inside a persist dir.
fn only_entry(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read persist dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one entry in {dir:?}");
    entries.pop().expect("one entry")
}

#[test]
fn restart_serves_disk_hit_byte_identical() {
    let dir = fresh_dir("tier_restart");
    let circuit = random_circuit(4, 14, 11);
    let topo = Topology::grid(4);

    let cold = {
        let a = Compiler::builder().workers(1).persist_dir(&dir).build();
        assert!(a.persistence_enabled());
        let r = a.compile(&circuit, &topo, Strategy::Eqm);
        let stats = a.tiered_cache_stats();
        assert_eq!(stats.memory_hits, 0);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.disk_writes, 1);
        assert_eq!(stats.disk_write_errors, 0);
        render(&r)
    }; // session A dropped: the memory tier is gone, the directory stays

    let b = Compiler::builder().workers(1).persist_dir(&dir).build();
    let warm = b.compile(&circuit, &topo, Strategy::Eqm);
    let stats = b.tiered_cache_stats();
    assert_eq!(stats.disk_hits, 1, "restart must hit the disk tier");
    assert_eq!(stats.misses, 0, "no recompile after restart");
    assert_eq!(render(&warm), cold, "disk hit must be byte-identical");

    // The disk hit was promoted into session B's memory tier: a second
    // lookup is a memory hit and never touches the disk counters again.
    let again = b.compile(&circuit, &topo, Strategy::Eqm);
    let stats = b.tiered_cache_stats();
    assert_eq!(stats.memory_hits, 1);
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(render(&again), cold);
}

#[test]
fn two_live_sessions_share_one_directory() {
    let dir = fresh_dir("tier_shared");
    let circuit = random_circuit(5, 16, 23);
    let topo = Topology::line(5);

    let a = Compiler::builder().workers(1).persist_dir(&dir).build();
    let b = Compiler::builder().workers(1).persist_dir(&dir).build();

    let from_a = a.compile(&circuit, &topo, Strategy::Awe);
    // B never compiled this circuit, but shares the directory: disk hit.
    let from_b = b.compile(&circuit, &topo, Strategy::Awe);
    assert_eq!(b.tiered_cache_stats().disk_hits, 1);
    assert_eq!(b.tiered_cache_stats().misses, 0);
    assert_eq!(render(&from_a), render(&from_b));

    // And the reverse direction: B's fresh compile is visible to A.
    let circuit2 = random_circuit(4, 10, 99);
    let from_b2 = b.compile(&circuit2, &topo, Strategy::QubitOnly);
    let from_a2 = a.compile(&circuit2, &topo, Strategy::QubitOnly);
    assert_eq!(a.tiered_cache_stats().disk_hits, 1);
    assert_eq!(render(&from_a2), render(&from_b2));
}

#[test]
fn stray_temp_files_are_swept_and_never_served() {
    let dir = fresh_dir("tier_stray_tmp");
    std::fs::create_dir_all(&dir).expect("create dir");
    // A writer killed mid-write leaves a temp file behind; opening a
    // session on the directory sweeps it.
    let stray = dir.join("deadbeef.12345.7.tmp");
    std::fs::write(&stray, b"half-written artifact").expect("plant stray tmp");

    let session = Compiler::builder().workers(1).persist_dir(&dir).build();
    assert!(!stray.exists(), "stray .tmp must be swept on open");

    // The directory still works normally afterwards.
    let circuit = random_circuit(3, 8, 5);
    let _ = session.compile(&circuit, &Topology::ring(3), Strategy::RingBased);
    assert_eq!(session.tiered_cache_stats().disk_writes, 1);
}

#[test]
fn corrupt_entry_degrades_to_a_recompile() {
    let dir = fresh_dir("tier_corrupt");
    let circuit = random_circuit(4, 12, 37);
    let topo = Topology::grid(4);

    let cold = {
        let a = Compiler::builder().workers(1).persist_dir(&dir).build();
        render(&a.compile(&circuit, &topo, Strategy::ProgressivePairing))
    };

    // Flip one payload byte on disk (past the 24-byte envelope header).
    let entry = only_entry(&dir);
    let mut bytes = std::fs::read(&entry).expect("read entry");
    let pos = 24 + (bytes.len() - 24) / 2;
    bytes[pos] ^= 0x40;
    std::fs::write(&entry, &bytes).expect("rewrite corrupted entry");

    let b = Compiler::builder().workers(1).persist_dir(&dir).build();
    let recompiled = b.compile(&circuit, &topo, Strategy::ProgressivePairing);
    let stats = b.tiered_cache_stats();
    assert_eq!(stats.disk_hits, 0, "corrupt entry must not be served");
    assert_eq!(stats.disk_rejects, 1, "corruption must be counted");
    assert_eq!(stats.misses, 1, "and degrade to a recompile");
    assert_eq!(render(&recompiled), cold, "recompile matches the original");

    // The recompile wrote a clean replacement: a third session hits disk.
    drop(b);
    let c = Compiler::builder().workers(1).persist_dir(&dir).build();
    let served = c.compile(&circuit, &topo, Strategy::ProgressivePairing);
    assert_eq!(c.tiered_cache_stats().disk_hits, 1);
    assert_eq!(render(&served), cold);
}

#[test]
fn persistence_works_with_the_memory_tier_disabled() {
    let dir = fresh_dir("tier_memory_off");
    let circuit = random_circuit(4, 10, 61);
    let topo = Topology::line(4);

    let a = Compiler::builder()
        .workers(1)
        .caching(false)
        .persist_dir(&dir)
        .build();
    assert!(!a.caching_enabled());
    assert!(a.persistence_enabled());

    let cold = render(&a.compile(&circuit, &topo, Strategy::Eqm));
    // With no memory tier, the second lookup in the *same* session is
    // already a disk hit.
    let warm = a.compile(&circuit, &topo, Strategy::Eqm);
    let stats = a.tiered_cache_stats();
    assert_eq!(stats.memory_hits, 0);
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(render(&warm), cold);
}

#[test]
fn verify_hits_audits_the_disk_tier() {
    let dir = fresh_dir("tier_verify_hits");
    let circuit = random_circuit(4, 12, 83);
    let topo = Topology::grid(4);

    {
        let a = Compiler::builder().workers(1).persist_dir(&dir).build();
        let _ = a.compile(&circuit, &topo, Strategy::Awe);
    }

    // verify_hits recompiles behind every hit and asserts equality; a
    // disk hit that decoded to anything else would panic here.
    let b = Compiler::builder()
        .workers(1)
        .verify_hits(true)
        .persist_dir(&dir)
        .build();
    let _ = b.compile(&circuit, &topo, Strategy::Awe);
    assert_eq!(b.tiered_cache_stats().disk_hits, 1);
    // And a memory hit under auditing, for completeness.
    let _ = b.compile(&circuit, &topo, Strategy::Awe);
    assert_eq!(b.tiered_cache_stats().memory_hits, 1);
}

#[test]
fn clear_cache_leaves_the_disk_tier_intact() {
    let dir = fresh_dir("tier_clear_cache");
    let circuit = random_circuit(4, 10, 29);
    let topo = Topology::ring(4);

    let session = Compiler::builder().workers(1).persist_dir(&dir).build();
    let first = session.compile(&circuit, &topo, Strategy::QubitOnly);
    session.clear_cache();
    // The memory tier is empty, but the artifact survives on disk.
    let second = session.compile(&circuit, &topo, Strategy::QubitOnly);
    let stats = session.tiered_cache_stats();
    assert_eq!(stats.disk_hits, 1, "post-clear lookup lands on disk");
    assert_eq!(stats.misses, 1, "only the original cold compile");
    assert_eq!(render(&first), render(&second));
}

#[test]
fn tiered_stats_without_persistence_mirror_the_memory_cache() {
    let session = Compiler::builder().workers(1).build();
    assert!(!session.persistence_enabled());
    let circuit = random_circuit(3, 8, 7);
    let topo = Topology::grid(3);
    let _ = session.compile(&circuit, &topo, Strategy::Eqm);
    let _ = session.compile(&circuit, &topo, Strategy::Eqm);

    let tiers = session.tiered_cache_stats();
    let memory = session.cache_stats();
    assert_eq!(tiers.memory_hits, memory.hits);
    assert_eq!(tiers.misses, memory.misses);
    assert_eq!(tiers.disk_hits, 0);
    assert_eq!(tiers.disk_writes, 0);
    assert_eq!(tiers.disk_rejects, 0);
    assert_eq!(tiers.disk_write_errors, 0);
}

/// Wire-level: the `stats` op reports the skeleton cache and the tier
/// split, and a server configured with a persist dir shows disk writes.
#[test]
fn wire_stats_carry_skeleton_and_tier_counters() {
    let dir = fresh_dir("tier_wire_stats");
    let session = Arc::new(Compiler::builder().workers(1).persist_dir(&dir).build());

    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || serve_duplex(session, server_reader, server_writer));

    let (reader, writer) = client_end.split();
    let mut client = ServiceClient::new(BufReader::new(reader), writer);
    let qasm = "OPENQASM 2.0;\nqreg q[3];\nh q;\ncx q[0], q[1];\n";
    let job = client
        .submit("wire", Strategy::Eqm, "grid:3", qasm)
        .expect("submit");
    let event = client.next_event().expect("completion");
    assert_eq!(event.job(), job);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.tiers.misses, 1, "one cold compile");
    assert_eq!(stats.tiers.disk_writes, 1, "written back to the disk tier");
    assert_eq!(stats.tiers.disk_hits, 0);
    assert_eq!(stats.skeleton_cache.hits, 0, "no sweeps submitted");
    assert_eq!(stats.cache.misses, 1);

    drop(client);
    server.join().expect("server thread").expect("server exit");
}
