//! Job-service lifecycle guarantees: cancellation never perturbs the
//! shared result cache, dropping a session joins its worker pool without
//! deadlock (the submit-side sibling of
//! `verify_hits_replays_exhaustive_strategy_without_deadlock`), and the
//! batch wrapper over the service stays byte-identical to direct
//! compilation.

use qompress::{BatchJob, CacheStats, Compiler, CompletionQueue, JobOutcome, JobStatus, Strategy};
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use qompress_workloads::{build, Benchmark};
use std::sync::mpsc;
use std::time::Duration;

fn job(label: &str, size: usize, strategy: Strategy) -> BatchJob {
    BatchJob::new(
        label,
        build(Benchmark::Cuccaro, size, 7),
        strategy,
        Topology::grid(size),
    )
}

#[test]
fn cancelled_jobs_never_touch_the_result_cache() {
    let session = Compiler::builder().workers(1).build();
    // Pausing the (not-yet-spawned) pool makes "still queued" exact, not
    // a race: no worker claims anything until resume.
    session.pause_workers();
    let doomed_a = session.submit(job("doomed-a", 6, Strategy::Eqm));
    let doomed_b = session.submit(job("doomed-b", 6, Strategy::Awe));
    let survivor = session.submit(job("survivor", 6, Strategy::QubitOnly));
    assert_eq!(doomed_a.status(), JobStatus::Queued);
    assert!(doomed_a.cancel());
    assert!(doomed_b.cancel());
    assert!(
        matches!(doomed_a.wait(), JobOutcome::Cancelled),
        "wait on a cancelled job returns immediately"
    );
    // Nothing has compiled yet, so the cache has seen zero lookups.
    assert_eq!(session.cache_stats(), CacheStats::default());

    session.resume_workers();
    assert!(survivor.wait().result().is_some());

    // Stats stay exact: only the survivor compiled (one miss, no hits,
    // nothing cached for the cancelled jobs).
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1));
    assert_eq!(session.cached_results(), 1);

    // Compiling a formerly-cancelled job now is a *miss* — its result was
    // never smuggled into the cache by the cancelled submission.
    let fresh = session.compile(
        &build(Benchmark::Cuccaro, 6, 7),
        &Topology::grid(6),
        Strategy::Eqm,
    );
    assert!(fresh.metrics.total_eps > 0.0);
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));

    let m = session.service_metrics();
    assert_eq!((m.submitted, m.completed, m.cancelled), (3, 1, 2));
    assert_eq!(m.queued + m.running + m.failed, 0);
}

#[test]
fn dropping_the_session_joins_workers_without_deadlock() {
    // Run the drop on a watchdog so a deadlocked join fails the test
    // instead of hanging the suite.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // Busy pool: several jobs queued behind one worker.
        let session = Compiler::builder().workers(1).build();
        let handles: Vec<_> = (0..4)
            .map(|i| session.submit(job(&format!("inflight-{i}"), 8, Strategy::Eqm)))
            .collect();
        // Wait until the single worker has actually claimed the head job,
        // so the shutdown below provably overlaps an in-flight compile.
        while handles[0].status() == JobStatus::Queued {
            std::thread::yield_now();
        }
        drop(session); // must cancel the queue tail and join the pool
        let outcomes: Vec<JobOutcome> = handles.iter().map(|h| h.wait()).collect();
        tx.send(outcomes).unwrap();
    });
    let outcomes = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("dropping a busy session must not deadlock");
    // Every handle resolved: claimed jobs finished, queued jobs were
    // cancelled by the shutdown. No outcome may be missing or failed.
    assert_eq!(outcomes.len(), 4);
    for outcome in &outcomes {
        assert!(
            matches!(outcome, JobOutcome::Done(_) | JobOutcome::Cancelled),
            "unexpected outcome {outcome:?}"
        );
    }
    assert!(
        outcomes.iter().any(|o| matches!(o, JobOutcome::Done(_))),
        "the in-flight job finishes during shutdown"
    );
}

#[test]
fn dropping_a_paused_session_cancels_the_whole_queue() {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let session = Compiler::builder().workers(2).build();
        session.pause_workers();
        let handles: Vec<_> = (0..3)
            .map(|i| session.submit(job(&format!("parked-{i}"), 5, Strategy::Eqm)))
            .collect();
        drop(session); // workers blocked on a paused queue must still join
        tx.send(handles).unwrap();
    });
    let handles = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("dropping a paused session must not deadlock");
    for handle in &handles {
        assert!(
            matches!(handle.wait(), JobOutcome::Cancelled),
            "{}",
            handle.label()
        );
        assert_eq!(handle.status(), JobStatus::Cancelled);
    }
}

#[test]
fn watcher_sees_cancellations_and_completions() {
    let session = Compiler::builder().workers(1).build();
    let watcher = CompletionQueue::new();
    session.pause_workers();
    let keep = session.submit_watched(job("keep", 5, Strategy::Eqm), &watcher);
    let drop_me = session.submit_watched(job("drop", 5, Strategy::Awe), &watcher);
    assert!(drop_me.cancel());
    // The cancellation streams immediately, before any worker runs.
    assert_eq!(watcher.pop(), Some(drop_me.id()));
    session.resume_workers();
    assert_eq!(watcher.pop(), Some(keep.id()));
    assert!(keep.wait().result().is_some());
}

#[test]
fn batch_through_the_service_is_byte_identical_to_streaming_submits() {
    let jobs: Vec<BatchJob> = [
        Strategy::QubitOnly,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
    ]
    .into_iter()
    .map(|s| job(&format!("sweep-{}", s.name()), 6, s))
    .collect();

    // Streaming path: one handle per job on a fresh session.
    let streaming = Compiler::builder().workers(2).caching(false).build();
    let handles: Vec<_> = jobs.iter().map(|j| streaming.submit(j.clone())).collect();
    let streamed: Vec<String> = handles
        .iter()
        .map(|h| format!("{:?}", *h.wait().result().expect("job must succeed")))
        .collect();

    // Batch path: the submit-all-then-wait wrapper on another session.
    let batcher = Compiler::builder().workers(2).caching(false).build();
    let batch = batcher.compile_batch(&jobs);
    for (job, (streamed, got)) in jobs.iter().zip(streamed.iter().zip(&batch.results)) {
        assert_eq!(
            streamed,
            &format!("{:?}", *got.result),
            "{}: streaming and batch must agree byte-for-byte",
            job.label
        );
    }
    let m = batcher.service_metrics();
    assert_eq!((m.submitted, m.completed), (4, 4));
}

#[test]
#[should_panic(expected = "panicked")]
fn batch_propagates_job_panics() {
    // One unplaceable job (6 qubits on a 2-node line) poisons the batch:
    // the wrapper preserves the historical panic contract even though the
    // service itself only marks the job failed.
    let session = Compiler::builder().workers(1).build();
    let jobs = vec![
        job("fine", 5, Strategy::Eqm),
        BatchJob::new(
            "too-big",
            build(Benchmark::Cuccaro, 6, 7),
            Strategy::QubitOnly,
            Topology::line(2),
        ),
    ];
    let _ = session.compile_batch(&jobs);
}

#[test]
fn empty_circuit_jobs_flow_through_the_service() {
    let session = Compiler::builder().workers(1).build();
    let handle = session.submit(BatchJob::new(
        "empty",
        Circuit::new(3),
        Strategy::QubitOnly,
        Topology::grid(3),
    ));
    let outcome = handle.wait();
    let result = outcome.result().expect("empty circuits compile");
    assert_eq!(result.logical_gates, 0);
}
