//! Strategy-relationship tests mirroring the paper's qualitative findings
//! (§7): FQ loses to qubit-only, compression wins on structured circuits,
//! RB finds nothing on BV, and EQM produces internal interactions.

use qompress::{Compiler, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_pulse::GateClass;
use qompress_workloads::{build, Benchmark};
use std::sync::{Arc, OnceLock};

/// One shared session for the whole suite: tests run concurrently against
/// it (exercising the registry/cache locking), repeated baselines (e.g.
/// qubit-only Cuccaro-12) are served from the result cache, and
/// `verify_hits` recompiles every hit to prove it byte-identical.
fn session() -> &'static Compiler {
    static SESSION: OnceLock<Compiler> = OnceLock::new();
    SESSION.get_or_init(|| Compiler::builder().verify_hits(true).build())
}

fn run(bench: Benchmark, size: usize, strategy: Strategy) -> Arc<qompress::CompilationResult> {
    let circuit = build(bench, size, 11);
    let topo = Topology::grid(size);
    session().compile(&circuit, &topo, strategy)
}

#[test]
fn fq_is_consistently_worse_than_qubit_only() {
    // Figure 7's orange line: every out-of-pair operation pays decode +
    // encode, so FQ's gate EPS falls below the qubit-only baseline.
    for bench in [Benchmark::Cuccaro, Benchmark::Cnu, Benchmark::QaoaCylinder] {
        let fq = run(bench, 12, Strategy::FullQuquart);
        let qo = run(bench, 12, Strategy::QubitOnly);
        assert!(
            fq.metrics.gate_eps <= qo.metrics.gate_eps,
            "{bench}: FQ {:.4} vs qubit-only {:.4}",
            fq.metrics.gate_eps,
            qo.metrics.gate_eps
        );
    }
}

#[test]
fn eqm_beats_qubit_only_on_cnu_gate_eps() {
    // The paper's headline: >50% gate-EPS gains on CNU (Figure 7). We
    // assert the direction and a nontrivial margin.
    let eqm = run(Benchmark::Cnu, 15, Strategy::Eqm);
    let qo = run(Benchmark::Cnu, 15, Strategy::QubitOnly);
    assert!(
        eqm.metrics.gate_eps > qo.metrics.gate_eps,
        "EQM {:.4} vs qubit-only {:.4}",
        eqm.metrics.gate_eps,
        qo.metrics.gate_eps
    );
}

#[test]
fn rb_beats_qubit_only_on_cuccaro_gate_eps() {
    let rb = run(Benchmark::Cuccaro, 12, Strategy::RingBased);
    let qo = run(Benchmark::Cuccaro, 12, Strategy::QubitOnly);
    assert!(
        rb.metrics.gate_eps > qo.metrics.gate_eps,
        "RB {:.4} vs qubit-only {:.4}",
        rb.metrics.gate_eps,
        qo.metrics.gate_eps
    );
}

#[test]
fn rb_finds_no_pairs_on_bv() {
    // BV's interaction graph is a star: no cycles, no compressions (§7).
    let rb = run(Benchmark::Bv, 12, Strategy::RingBased);
    assert!(rb.pairs.is_empty());
    // Consequently RB == qubit-only for BV.
    let qo = run(Benchmark::Bv, 12, Strategy::QubitOnly);
    assert_eq!(rb.schedule.len(), qo.schedule.len());
}

#[test]
fn rb_finds_pairs_on_cyclic_benchmarks() {
    for bench in [Benchmark::Cuccaro, Benchmark::Cnu, Benchmark::Qram] {
        let rb = run(bench, 12, Strategy::RingBased);
        assert!(!rb.pairs.is_empty(), "{bench}: RB found no pairs");
    }
}

#[test]
fn compression_strategies_emit_internal_cx_on_cuccaro() {
    for strategy in [Strategy::Eqm, Strategy::RingBased] {
        let r = run(Benchmark::Cuccaro, 12, strategy);
        let internal = r.metrics.count(GateClass::Cx0) + r.metrics.count(GateClass::Cx1);
        assert!(internal > 0, "{strategy}: no internal CX on Cuccaro");
    }
}

#[test]
fn fq_pays_enc_dec_on_communication_heavy_circuits() {
    let fq = run(Benchmark::QaoaCylinder, 12, Strategy::FullQuquart);
    assert!(fq.metrics.count(GateClass::Enc) > 0);
    assert_eq!(
        fq.metrics.count(GateClass::Enc),
        fq.metrics.count(GateClass::Dec),
        "every decode must re-encode"
    );
}

#[test]
fn qubit_only_duration_is_shorter_than_fq() {
    // FQ's serialization and long gates inflate circuit duration (§7.1).
    let fq = run(Benchmark::Cuccaro, 10, Strategy::FullQuquart);
    let qo = run(Benchmark::Cuccaro, 10, Strategy::QubitOnly);
    assert!(fq.metrics.duration_ns > qo.metrics.duration_ns);
}

#[test]
fn compression_reduces_active_units() {
    // The space dividend: compression strategies use fewer physical units.
    let eqm = run(Benchmark::Cnu, 15, Strategy::Eqm);
    let qo = run(Benchmark::Cnu, 15, Strategy::QubitOnly);
    assert!(eqm.active_units() <= qo.active_units());
    assert!(!eqm.pairs.is_empty());
}

#[test]
fn exhaustive_matches_or_beats_singleton_strategies_on_small_input() {
    // EC is the (greedy) upper bound the others approximate (§5.1).
    let circuit = build(Benchmark::Cuccaro, 8, 11);
    let topo = Topology::grid(8);
    let config = CompilerConfig::paper();
    let (ec, _) = qompress::compile_exhaustive(
        &circuit,
        &topo,
        &config,
        &qompress::ExhaustiveOptions {
            ordered: false,
            max_rounds: 4,
            objective: qompress::EcObjective::TotalEps,
        },
    );
    let qo = session().compile(&circuit, &topo, Strategy::QubitOnly);
    assert!(ec.metrics.total_eps >= qo.metrics.total_eps * 0.999);
}

#[test]
fn strategies_scale_across_sizes() {
    for size in [8usize, 16, 24] {
        for strategy in [Strategy::QubitOnly, Strategy::Eqm] {
            let r = run(Benchmark::Cuccaro, size, strategy);
            assert!(r.metrics.total_eps > 0.0);
            assert!(r.metrics.total_eps < 1.0);
        }
    }
}

#[test]
fn gate_eps_decreases_with_circuit_size() {
    // Larger circuits have more gates, hence lower EPS — sanity of the
    // Figure 7 x-axis trend.
    let small = run(Benchmark::Cnu, 9, Strategy::Eqm);
    let large = run(Benchmark::Cnu, 21, Strategy::Eqm);
    assert!(large.metrics.gate_eps < small.metrics.gate_eps);
}
