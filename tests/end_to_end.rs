//! Full-pipeline smoke tests: every benchmark family compiles under every
//! strategy on every topology class with a structurally valid schedule and
//! sane metrics.

use qompress::{compile, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_workloads::{build, Benchmark, ALL_BENCHMARKS};

fn check(bench: Benchmark, size: usize, topo: &Topology, strategy: Strategy) {
    let circuit = build(bench, size, 7);
    let config = CompilerConfig::paper();
    let result = compile(&circuit, topo, strategy, &config);
    let problems = result.schedule.validate(topo);
    assert!(
        problems.is_empty(),
        "{bench}@{size} {strategy} on {topo}: {problems:?}"
    );
    let m = &result.metrics;
    assert!(m.gate_eps > 0.0 && m.gate_eps <= 1.0, "{bench} {strategy}");
    assert!(
        m.coherence_eps > 0.0 && m.coherence_eps <= 1.0,
        "{bench} {strategy}"
    );
    assert!(m.duration_ns > 0.0, "{bench} {strategy}");
    // Every logical gate must be realized (physical op count >= logical 2q
    // count, since 1q gates may merge).
    assert!(
        result.schedule.len() >= circuit.two_qubit_gate_count(),
        "{bench} {strategy}: lost gates"
    );
    // Residency covers every qubit for the full duration (worst-case
    // model, §6.1.1).
    let per_qubit: f64 = result
        .trace
        .qubit_ns
        .iter()
        .zip(result.trace.ququart_ns.iter())
        .map(|(a, b)| a + b)
        .sum::<f64>()
        / circuit.n_qubits() as f64;
    assert!(
        (per_qubit - m.duration_ns).abs() < 1e-6,
        "{bench} {strategy}: residency {per_qubit} vs duration {}",
        m.duration_ns
    );
}

#[test]
fn all_benchmarks_on_grid_with_main_strategies() {
    for bench in ALL_BENCHMARKS {
        let size = 12.max(bench.min_size());
        let topo = Topology::grid(size);
        for strategy in [
            Strategy::QubitOnly,
            Strategy::Eqm,
            Strategy::RingBased,
            Strategy::Awe,
        ] {
            check(bench, size, &topo, strategy);
        }
    }
}

#[test]
fn progressive_pairing_on_structured_benchmarks() {
    for bench in [Benchmark::Cuccaro, Benchmark::Cnu, Benchmark::QaoaCylinder] {
        let size = 12;
        let topo = Topology::grid(size);
        check(bench, size, &topo, Strategy::ProgressivePairing);
    }
}

#[test]
fn fq_baseline_on_structured_benchmarks() {
    for bench in [Benchmark::Cuccaro, Benchmark::Cnu, Benchmark::Bv] {
        let size = 10;
        let topo = Topology::grid(size);
        check(bench, size, &topo, Strategy::FullQuquart);
    }
}

#[test]
fn heavy_hex_and_ring_topologies() {
    for bench in [Benchmark::Cnu, Benchmark::QaoaCylinder] {
        for topo in [Topology::heavy_hex_65(), Topology::ring(65)] {
            for strategy in [Strategy::QubitOnly, Strategy::Eqm] {
                check(bench, 15, &topo, strategy);
            }
        }
    }
}

#[test]
fn larger_circuits_compile() {
    for bench in [Benchmark::Cuccaro, Benchmark::QaoaTorus] {
        let size = 30;
        let topo = Topology::grid(size);
        check(bench, size, &topo, Strategy::Eqm);
        check(bench, size, &topo, Strategy::QubitOnly);
    }
}

#[test]
fn double_capacity_via_compression() {
    // The paper's 2x capacity claim: a 16-qubit circuit fits on 8 physical
    // units when every qubit is compressed.
    let circuit = build(Benchmark::Cuccaro, 16, 3);
    let topo = Topology::grid(8);
    let config = CompilerConfig::paper();
    let result = compile(&circuit, &topo, Strategy::Eqm, &config);
    assert!(result.schedule.validate(&topo).is_empty());
    assert_eq!(result.initial_placements.len(), 16);
    assert!(result.active_units() <= 8);
}

#[test]
fn compiled_gate_mix_uses_ququart_classes_under_compression() {
    use qompress_pulse::GateClass;
    let circuit = build(Benchmark::Cnu, 15, 3);
    let topo = Topology::grid(15);
    let config = CompilerConfig::paper();
    let eqm = compile(&circuit, &topo, Strategy::Eqm, &config);
    let qo = compile(&circuit, &topo, Strategy::QubitOnly, &config);
    // Qubit-only emits no ququart classes at all.
    for (&class, &n) in &qo.metrics.gate_counts {
        if n > 0 {
            assert!(class.is_qubit_only(), "qubit-only emitted {class}");
        }
    }
    // EQM on CNU compresses pairs and uses internal CXs.
    let internal = eqm.metrics.count(GateClass::Cx0) + eqm.metrics.count(GateClass::Cx1);
    assert!(internal > 0, "EQM should produce internal CX gates on CNU");
}
