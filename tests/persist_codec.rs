//! Codec correctness for the persistent cache tier: round trips over
//! random compilation results, plus corruption fuzz — byte flips,
//! truncations and version bumps must all decode to a clean miss, never
//! a panic.

use proptest::prelude::*;
use qompress::persist::{decode_result, encode_result, CODEC_VERSION};
use qompress::{CompilationResult, Compiler, Strategy};
use qompress_arch::Topology;
use qompress_store::{decode_envelope, encode_envelope};
use qompress_workloads::random_circuit;

/// Renders every observable field of a compilation, so "byte-identical"
/// is a literal string comparison (the shared shape of the session and
/// batch suites).
fn render(r: &CompilationResult) -> String {
    format!(
        "{}\nmetrics: {:?}\nschedule: {:?}\nplacements: {:?} -> {:?}\nencoded: {:?}\npairs: {:?}\ngates: {}\ntrace: {:?}\n",
        r.strategy,
        r.metrics,
        r.schedule,
        r.initial_placements,
        r.final_placements,
        r.encoded_units,
        r.pairs,
        r.logical_gates,
        r.trace,
    )
}

fn strategy_from_index(i: usize) -> Strategy {
    [
        Strategy::QubitOnly,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
        Strategy::ProgressivePairing,
    ][i % 5]
}

fn topology_from_index(i: usize, n: usize) -> Topology {
    match i % 3 {
        0 => Topology::grid(n),
        1 => Topology::line(n),
        _ => Topology::ring(n.max(3)),
    }
}

fn sample(
    n: usize,
    gates: usize,
    seed: u64,
    strategy_idx: usize,
    topo_idx: usize,
) -> CompilationResult {
    let session = Compiler::builder().caching(false).build();
    let result = session.compile(
        &random_circuit(n, gates, seed),
        &topology_from_index(topo_idx, n),
        strategy_from_index(strategy_idx),
    );
    (*result).clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// decode(encode(r)) rebuilds every observable field bit-exactly, and
    /// the encoding is canonical (re-encoding is byte-identical).
    #[test]
    fn round_trip_over_random_results(
        n in 3usize..6,
        gates in 6usize..24,
        seed in 0u64..1000,
        strategy_idx in 0usize..5,
        topo_idx in 0usize..3,
    ) {
        let result = sample(n, gates, seed, strategy_idx, topo_idx);
        let encoded = encode_result(&result);
        let decoded = decode_result(&encoded).expect("round trip must decode");
        prop_assert_eq!(render(&result), render(&decoded));
        prop_assert_eq!(encode_result(&decoded), encoded);
    }

    /// Single-byte corruption anywhere in the payload must never panic:
    /// it decodes to `None` (a miss) or — since not every byte is
    /// load-bearing for *validity* — to some well-formed result. Wrapped
    /// in the store envelope, the same flip is always rejected outright.
    #[test]
    fn single_byte_flips_never_panic(
        seed in 0u64..1000,
        flip_seed in 0u64..u64::MAX,
    ) {
        let result = sample(4, 12, seed, seed as usize, seed as usize);
        let encoded = encode_result(&result);

        // A pseudo-random batch of positions (cheap LCG over the seed)
        // rather than every byte — proptest multiplies the cases.
        let mut state = flip_seed | 1;
        for _ in 0..32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (state >> 33) as usize % encoded.len();
            let bit = 1u8 << ((state >> 29) & 7);
            let mut bad = encoded.clone();
            bad[pos] ^= bit;
            // Must not panic; a `Some` is acceptable for the bare codec.
            let _ = decode_result(&bad);

            // Behind the envelope the flip is caught by the FNV
            // fingerprint every time.
            let mut enveloped = encode_envelope(&encoded);
            let hdr = enveloped.len() - encoded.len();
            enveloped[hdr + pos] ^= bit;
            prop_assert_eq!(decode_envelope(&enveloped), None);
        }
    }

    /// Every strict prefix decodes to a clean miss — truncation can never
    /// panic or produce a value.
    #[test]
    fn truncations_are_clean_misses(seed in 0u64..200) {
        let result = sample(3, 8, seed, seed as usize, seed as usize);
        let encoded = encode_result(&result);
        // Sample the prefix lengths (the in-crate unit test sweeps all of
        // a fixed payload; here the payloads vary).
        let step = (encoded.len() / 64).max(1);
        for len in (0..encoded.len()).step_by(step) {
            prop_assert!(decode_result(&encoded[..len]).is_none(), "prefix {len} decoded");
        }
    }
}

#[test]
fn version_bump_is_a_clean_miss() {
    let result = sample(4, 10, 7, 1, 0);
    let mut encoded = encode_result(&result);
    for other in [
        CODEC_VERSION + 1,
        CODEC_VERSION.wrapping_sub(1),
        0,
        u32::MAX,
    ] {
        if other == CODEC_VERSION {
            continue;
        }
        encoded[..4].copy_from_slice(&other.to_le_bytes());
        assert!(
            decode_result(&encoded).is_none(),
            "foreign version {other} decoded"
        );
    }
}

#[test]
fn arbitrary_garbage_never_panics() {
    // Deterministic pseudo-random byte soup at assorted lengths.
    let mut state = 0x9e3779b97f4a7c15u64;
    for len in [0usize, 1, 3, 4, 7, 16, 64, 256, 4096] {
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bytes.push((state >> 56) as u8);
        }
        let _ = decode_result(&bytes);
        assert_eq!(decode_envelope(&bytes), None, "garbage of length {len}");
    }
    // Garbage that *claims* the right version must still fail cleanly.
    let mut versioned = CODEC_VERSION.to_le_bytes().to_vec();
    versioned.extend_from_slice(&[0xAB; 100]);
    assert!(decode_result(&versioned).is_none());
}

#[test]
fn distinct_results_encode_distinctly() {
    let a = sample(4, 12, 1, 0, 0);
    let b = sample(4, 12, 2, 0, 0);
    assert_ne!(
        encode_result(&a),
        encode_result(&b),
        "different compilations must not share an encoding"
    );
}
