//! Differential pin of the optimized router against a naive reference.
//!
//! The router's blocked-step loop is incremental (cursor-based lookahead,
//! scratch buffers, perturbation-only scoring, memoized fallback paths).
//! All of that is *mechanical* speedup: the op sequence must be
//! byte-identical to the straightforward formulation this file retains —
//! a from-scratch reimplementation of the pre-optimization router that
//! rescans the circuit for its lookahead, allocates fresh vectors per
//! step, dedups candidates with `Vec::contains`, rescores every pair for
//! every candidate, and runs a fresh Dijkstra per fallback hop.
//!
//! Any heuristic drift — a changed tie-break, a skipped term, a reordered
//! candidate — shows up here as a diverging `Vec<PhysicalOp>`.

use qompress::{
    compile, gate_cost, map_circuit, route, swap_class, CompilerConfig, Layout, MappingOptions,
    PhysicalOp,
};
use qompress_arch::{ExpandedGraph, Slot, SlotIndex, Topology};
use qompress_circuit::{graph::WGraph, Circuit, CircuitDag, Gate};
use qompress_workloads::{build, random_circuit, Benchmark};

use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Naive reference implementation (the seed router, verbatim semantics).
// ---------------------------------------------------------------------------

/// Reference distance oracle: the same Eq. (4) edge weights as the real
/// [`qompress::DistanceOracle`], built independently on the public
/// [`WGraph`], with a plain per-source row memo (values are identical with
/// or without the memo — Dijkstra is deterministic — it only keeps the
/// reference suite fast enough to run).
struct NaiveOracle {
    graph: WGraph,
    rows: RefCell<HashMap<usize, Vec<f64>>>,
}

impl NaiveOracle {
    fn new(expanded: &ExpandedGraph, layout: &Layout, config: &CompilerConfig) -> Self {
        let usable = |x: Slot| x.slot == SlotIndex::Zero || layout.is_encoded(x.node);
        let mut graph = WGraph::new(expanded.n_slots());
        for s in expanded.slots() {
            for t in expanded.neighbors(s) {
                if t.index() <= s.index() || !usable(s) || !usable(t) {
                    continue;
                }
                let (class, ua, ub) = swap_class(layout, s, t);
                let ub = if ua == ub { None } else { Some(ub) };
                let cost = gate_cost(config, layout, class, ua, ub);
                graph.add_edge(s.index(), t.index(), cost.max(0.0));
            }
        }
        NaiveOracle {
            graph,
            rows: RefCell::new(HashMap::new()),
        }
    }

    fn distance(&self, from: Slot, to: Slot) -> f64 {
        let mut rows = self.rows.borrow_mut();
        rows.entry(from.index())
            .or_insert_with(|| self.graph.dijkstra(from.index()))[to.index()]
    }

    fn path(&self, from: Slot, to: Slot) -> Option<Vec<Slot>> {
        // Fresh Dijkstra per call, exactly like the pre-optimization
        // oracle.
        let (_, prev) = self.graph.dijkstra_with_prev(from.index());
        WGraph::path_from_prev(&prev, from.index(), to.index())
            .map(|p| p.into_iter().map(Slot::from_index).collect())
    }
}

/// The seed router: full circuit rescans, fresh allocations per step,
/// quadratic candidate dedup.
struct ReferenceRouter<'a> {
    circuit: &'a Circuit,
    dag: &'a CircuitDag,
    layout: &'a mut Layout,
    expanded: &'a ExpandedGraph,
    config: &'a CompilerConfig,
    oracle: NaiveOracle,
    done: Vec<bool>,
    remaining_preds: Vec<usize>,
    ready: Vec<usize>,
    ops: Vec<PhysicalOp>,
    last_move: Option<(Slot, Slot)>,
    steps_since_progress: usize,
}

impl<'a> ReferenceRouter<'a> {
    fn new(
        circuit: &'a Circuit,
        dag: &'a CircuitDag,
        layout: &'a mut Layout,
        expanded: &'a ExpandedGraph,
        config: &'a CompilerConfig,
    ) -> Self {
        let oracle = NaiveOracle::new(expanded, layout, config);
        let n = circuit.len();
        let mut remaining_preds = vec![0usize; n];
        for idx in 0..n {
            remaining_preds[idx] = dag.preds(idx).len();
        }
        let ready = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
        ReferenceRouter {
            circuit,
            dag,
            layout,
            expanded,
            config,
            oracle,
            done: vec![false; n],
            remaining_preds,
            ready,
            ops: Vec::new(),
            last_move: None,
            steps_since_progress: 0,
        }
    }

    fn run(mut self) -> Vec<PhysicalOp> {
        let total = self.circuit.len();
        let mut emitted = 0;
        while emitted < total {
            if let Some(gate_idx) = self.pick_executable() {
                self.emit_gate(gate_idx);
                self.finish_gate(gate_idx);
                emitted += 1;
                self.steps_since_progress = 0;
                continue;
            }
            if self.steps_since_progress >= self.config.max_router_steps_per_gate {
                let g = *self.ready.first().expect("blocked implies a ready gate");
                self.force_route(g);
                self.emit_gate(g);
                self.finish_gate(g);
                emitted += 1;
                self.steps_since_progress = 0;
                continue;
            }
            match self.best_move() {
                Some(mv) => {
                    self.apply_move(mv);
                    self.steps_since_progress += 1;
                }
                None => {
                    let g = *self.ready.first().expect("ready gate exists");
                    self.force_route(g);
                    self.emit_gate(g);
                    self.finish_gate(g);
                    emitted += 1;
                    self.steps_since_progress = 0;
                }
            }
        }
        self.ops
    }

    fn slot_of(&self, qubit: usize) -> Slot {
        self.layout.slot_of(qubit).expect("qubit placed")
    }

    fn gate_executable(&self, idx: usize) -> bool {
        match self.circuit.gates()[idx] {
            Gate::Single { .. } => true,
            Gate::Cx { control, target } => self
                .expanded
                .slots_adjacent(self.slot_of(control), self.slot_of(target)),
            Gate::Swap { .. } => true,
        }
    }

    fn pick_executable(&self) -> Option<usize> {
        self.ready
            .iter()
            .copied()
            .filter(|&g| self.gate_executable(g))
            .max_by(|&a, &b| {
                self.dag
                    .remaining_path_len(a)
                    .cmp(&self.dag.remaining_path_len(b))
                    .then(b.cmp(&a))
            })
    }

    fn finish_gate(&mut self, idx: usize) {
        self.done[idx] = true;
        self.ready.retain(|&g| g != idx);
        for &s in self.dag.succs(idx) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready.push(s);
            }
        }
        self.ready.sort_unstable();
    }

    fn emit_gate(&mut self, idx: usize) {
        let gate = self.circuit.gates()[idx];
        match gate {
            Gate::Single { kind, qubit } => {
                let slot = self.slot_of(qubit);
                let class = if !self.layout.is_encoded(slot.node) {
                    qompress_pulse::GateClass::X
                } else if slot.slot == SlotIndex::Zero {
                    qompress_pulse::GateClass::X0
                } else {
                    qompress_pulse::GateClass::X1
                };
                self.ops.push(PhysicalOp::Single {
                    unit: slot.node,
                    kind,
                    class,
                });
            }
            Gate::Cx { control, target } => {
                let cs = self.slot_of(control);
                let ts = self.slot_of(target);
                let (class, a, b) = qompress::cx_class(self.layout, cs, ts);
                let op = if a == b {
                    PhysicalOp::Internal { unit: a, class }
                } else {
                    PhysicalOp::TwoUnit { a, b, class }
                };
                self.ops.push(op);
            }
            Gate::Swap { a: qa, b: qb } => {
                let sa = self.slot_of(qa);
                let sb = self.slot_of(qb);
                self.layout.swap_occupants(sa, sb);
            }
        }
    }

    fn front(&self) -> Vec<(Slot, Slot)> {
        self.ready
            .iter()
            .filter_map(|&g| self.circuit.gates()[g].qubit_pair())
            .map(|(a, b)| (self.slot_of(a), self.slot_of(b)))
            .filter(|&(sa, sb)| !self.expanded.slots_adjacent(sa, sb))
            .collect()
    }

    /// The quadratic rescan the optimized router replaces: walk the whole
    /// circuit from gate 0, skipping done/ready gates by linear probe.
    fn lookahead(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for idx in 0..self.circuit.len() {
            if self.done[idx] || self.ready.contains(&idx) {
                continue;
            }
            if let Some(pair) = self.circuit.gates()[idx].qubit_pair() {
                out.push(pair);
                if out.len() >= self.config.lookahead {
                    break;
                }
            }
        }
        out
    }

    fn slot_usable(&self, s: Slot) -> bool {
        s.slot == SlotIndex::Zero || self.layout.is_encoded(s.node)
    }

    fn candidate_moves(&self, front: &[(Slot, Slot)]) -> Vec<(Slot, Slot)> {
        let mut moves = Vec::new();
        let mut push = |s: Slot, t: Slot| {
            let mv = if s.index() <= t.index() {
                (s, t)
            } else {
                (t, s)
            };
            if !moves.contains(&mv) {
                moves.push(mv);
            }
        };
        for &(sa, sb) in front {
            for s in [sa, sb] {
                for t in self.expanded.neighbors(s) {
                    if !self.slot_usable(t) {
                        continue;
                    }
                    push(s, t);
                }
            }
        }
        moves
    }

    /// Full rescore of every front + lookahead pair for every candidate.
    fn score_move(
        &self,
        mv: (Slot, Slot),
        front: &[(Slot, Slot)],
        lookahead: &[(usize, usize)],
    ) -> f64 {
        let (s, t) = mv;
        let relocate = |x: Slot| {
            if x == s {
                t
            } else if x == t {
                s
            } else {
                x
            }
        };
        let mut delta = 0.0;
        for &(a, b) in front {
            let before = self.oracle.distance(a, b);
            let after = self.oracle.distance(relocate(a), relocate(b));
            delta += after - before;
        }
        let mut decay = self.config.lookahead_decay;
        for &(qa, qb) in lookahead {
            let a = self.slot_of(qa);
            let b = self.slot_of(qb);
            let before = self.oracle.distance(a, b);
            let after = self.oracle.distance(relocate(a), relocate(b));
            delta += decay * (after - before);
            decay *= self.config.lookahead_decay;
        }
        let front_slots: Vec<Slot> = front.iter().flat_map(|&(a, b)| [a, b]).collect();
        for x in [s, t] {
            if self.layout.is_encoded(x.node) && !front_slots.contains(&x) {
                delta += self.config.ququart_route_penalty;
            }
        }
        if let Some((ls, lt)) = self.last_move {
            if (ls, lt) == (s, t) || (lt, ls) == (s, t) {
                delta += 1.0e6;
            }
        }
        delta
    }

    fn best_move(&mut self) -> Option<(Slot, Slot)> {
        let front = self.front();
        if front.is_empty() {
            return None;
        }
        let lookahead = self.lookahead();
        let moves = self.candidate_moves(&front);
        let mut best: Option<((Slot, Slot), f64)> = None;
        for mv in moves {
            let score = self.score_move(mv, &front, &lookahead);
            if !score.is_finite() {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bmv, bscore)) => {
                    score < *bscore - 1e-12
                        || ((score - *bscore).abs() <= 1e-12
                            && (mv.0.index(), mv.1.index()) < (bmv.0.index(), bmv.1.index()))
                }
            };
            if better {
                best = Some((mv, score));
            }
        }
        best.map(|(mv, _)| mv)
    }

    fn apply_move(&mut self, (s, t): (Slot, Slot)) {
        let (class, a, b) = swap_class(self.layout, s, t);
        let op = if a == b {
            PhysicalOp::Internal { unit: a, class }
        } else {
            PhysicalOp::TwoUnit { a, b, class }
        };
        self.layout.apply_op(&op);
        self.ops.push(op);
        self.last_move = Some((s, t));
    }

    fn force_route(&mut self, gate: usize) {
        let (qa, qb) = self.circuit.gates()[gate]
            .qubit_pair()
            .expect("force_route only for two-qubit gates");
        let mut guard = 0;
        while !self
            .expanded
            .slots_adjacent(self.slot_of(qa), self.slot_of(qb))
        {
            let sa = self.slot_of(qa);
            let sb = self.slot_of(qb);
            let path = self
                .oracle
                .path(sa, sb)
                .unwrap_or_else(|| panic!("no path between {sa} and {sb}"));
            let next = path[1];
            self.apply_move((sa, next));
            guard += 1;
            assert!(guard <= self.expanded.n_slots() * 2, "no convergence");
        }
        self.last_move = None;
    }
}

// ---------------------------------------------------------------------------
// Differential harness.
// ---------------------------------------------------------------------------

/// Maps `circuit` under `options`, routes it with both routers from
/// identical layouts, and asserts byte-identical op streams and final
/// layouts.
fn assert_routers_agree(circuit: &Circuit, topo: &Topology, options: &MappingOptions, label: &str) {
    let config = CompilerConfig::paper();
    let dag = CircuitDag::build(circuit);
    let expanded = ExpandedGraph::new(topo.clone());
    let base = map_circuit(circuit, topo, &config, options);

    let mut opt_layout = base.clone();
    let optimized = route(circuit, &dag, &mut opt_layout, &expanded, &config);

    let mut ref_layout = base.clone();
    let reference = ReferenceRouter::new(circuit, &dag, &mut ref_layout, &expanded, &config).run();

    assert_eq!(
        optimized, reference,
        "op stream diverged from the naive reference ({label})"
    );
    assert_eq!(
        opt_layout, ref_layout,
        "final layout diverged from the naive reference ({label})"
    );
}

fn topology_from_index(i: usize, n: usize) -> Topology {
    match i % 4 {
        0 => Topology::line(n),
        1 => Topology::grid(n),
        2 => Topology::ring(n.max(3)),
        // Smallest heavy-hex member (23 units) — the device family the
        // landmark oracle targets must stay byte-identical in exact mode.
        _ => Topology::heavy_hex(3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn optimized_router_is_byte_identical_on_random_circuits(
        n in 3usize..7,
        gates in 6usize..26,
        seed in 0u64..1000,
        topo_idx in 0usize..4,
        opts_idx in 0usize..3,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let topo = topology_from_index(topo_idx, n);
        let options = match opts_idx {
            0 => MappingOptions::qubit_only(),
            1 => MappingOptions::eqm(),
            // A concrete compression: pair the first two qubits.
            _ => MappingOptions::with_pairs(vec![(0, 1)]),
        };
        assert_routers_agree(
            &circuit,
            &topo,
            &options,
            &format!("random n={n} gates={gates} seed={seed} topo={topo_idx} opts={opts_idx}"),
        );
    }
}

/// Every strategy's *realized* pair set (including spontaneous EQM
/// pairings and the exhaustive search's committed compressions) produces
/// an encoded layout; the optimized router must agree with the reference
/// on all of them.
#[test]
fn routers_agree_on_every_strategy_pair_set() {
    let config = CompilerConfig::paper();
    let circuit = {
        let mut c = Circuit::new(6);
        c.push(Gate::h(0));
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (0, 5)] {
            c.push(Gate::cx(a, b));
        }
        for (a, b) in [(5, 1), (3, 0), (2, 4)] {
            c.push(Gate::cx(a, b));
        }
        c
    };
    for topo in [
        Topology::line(6),
        Topology::grid(6),
        Topology::ring(6),
        Topology::heavy_hex(3),
    ] {
        for strategy in qompress::ALL_STRATEGIES {
            let pairs = compile(&circuit, &topo, strategy, &config).pairs;
            assert_routers_agree(
                &circuit,
                &topo,
                &MappingOptions::with_pairs(pairs.clone()),
                &format!("{strategy} pairs={pairs:?} on {}", topo.name()),
            );
        }
    }
}

/// A communication-heavy 100+-gate workload per topology family — the
/// shape the incremental lookahead targets.
#[test]
fn routers_agree_on_benchmark_circuits() {
    for (name, circuit) in [
        ("cuccaro10", build(Benchmark::Cuccaro, 10, 7)),
        ("qram8", build(Benchmark::Qram, 8, 7)),
        ("random12x60", random_circuit(12, 60, 41)),
    ] {
        assert!(circuit.len() >= 40, "{name} too small to stress the loop");
        for topo in [
            Topology::line(circuit.n_qubits()),
            Topology::grid(circuit.n_qubits()),
            Topology::ring(circuit.n_qubits()),
            Topology::heavy_hex_65(),
        ] {
            for options in [
                MappingOptions::qubit_only(),
                MappingOptions::eqm(),
                MappingOptions::with_pairs(vec![(0, 1), (2, 3)]),
            ] {
                assert_routers_agree(
                    &circuit,
                    &topo,
                    &options,
                    &format!("{name} on {}", topo.name()),
                );
            }
        }
    }
}
