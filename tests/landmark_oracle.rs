//! Property and integration tests for the landmark distance oracle.
//!
//! Exact mode is pinned bitwise by `routing_determinism.rs`; this file
//! covers the *landmark* mode the exact pin cannot see: the ALT
//! estimates must be admissible lower bounds on the true
//! Dijkstra distances, the hot-row exact path must agree bitwise with a
//! dedicated exact oracle, landmark-mode paths must be real walks in the
//! expanded graph, and a landmark-forced end-to-end compilation must be
//! deterministic and emit only adjacency-respecting two-unit ops.

use qompress::{Compiler, CompilerConfig, DistanceOracle, OracleMode, Strategy};
use qompress_arch::{ExpandedGraph, Topology};
use qompress_circuit::graph::WGraph;
use qompress_service::result_fingerprint;
use qompress_workloads::{build, Benchmark};

use proptest::prelude::*;
use std::collections::HashSet;

/// Builds the unit-level weighted graph for a topology with varied but
/// deterministic positive edge weights, so the proptest exercises
/// non-uniform metrics rather than plain hop counts.
fn weighted_graph(topo: &Topology) -> WGraph {
    let mut graph = WGraph::new(topo.n_nodes());
    for &(a, b) in topo.edges() {
        let w = 0.5 + ((a * 31 + b * 17) % 13) as f64 * 0.25;
        graph.add_edge(a, b, w);
    }
    graph
}

fn topology_from_index(i: usize, n: usize) -> Topology {
    match i % 4 {
        0 => Topology::line(n),
        1 => Topology::grid(n),
        2 => Topology::ring(n.max(3)),
        _ => Topology::heavy_hex(3),
    }
}

/// Forces landmark mode regardless of device size.
fn landmark_config() -> CompilerConfig {
    let mut config = CompilerConfig::paper();
    config.oracle_exact_threshold = 1;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// max_L |d(L,a) - d(L,b)| <= d(a,b) for every pair: the landmark
    /// estimate never overestimates, and the hot-row exact entry point
    /// agrees bitwise with a dedicated exact-mode oracle.
    #[test]
    fn landmark_estimates_are_admissible_lower_bounds(
        topo_idx in 0usize..4,
        n in 4usize..30,
    ) {
        let topo = topology_from_index(topo_idx, n);
        let exact = DistanceOracle::over_graph(weighted_graph(&topo), &CompilerConfig::paper());
        let landmark = DistanceOracle::over_graph(weighted_graph(&topo), &landmark_config());
        prop_assert_eq!(exact.mode(), OracleMode::Exact);
        prop_assert_eq!(landmark.mode(), OracleMode::Landmark);

        for a in 0..topo.n_nodes() {
            for b in 0..topo.n_nodes() {
                let truth = exact.distance_idx(a, b);
                let estimate = landmark.distance_idx(a, b);
                prop_assert!(
                    estimate <= truth + 1e-9,
                    "estimate {estimate} overestimates exact {truth} for ({a}, {b}) on {}",
                    topo.name()
                );
                if a == b {
                    prop_assert_eq!(estimate, 0.0);
                }
                // The hot-row path is pure Dijkstra — bitwise identical
                // to the exact oracle, not merely within tolerance.
                prop_assert_eq!(landmark.distance_exact_idx(a, b).to_bits(), truth.to_bits());
            }
        }

        // Landmarks were sampled lazily on first estimate, and stay
        // within both the budget and the vertex set.
        let verts = landmark.landmark_vertices();
        prop_assert!(!verts.is_empty());
        prop_assert!(verts.len() <= topo.n_nodes());
        prop_assert!(verts.iter().all(|&v| v < topo.n_nodes()));
        let distinct: HashSet<usize> = verts.iter().copied().collect();
        prop_assert_eq!(distinct.len(), verts.len(), "duplicate landmarks");
    }
}

/// Landmark-mode `path()` must return a genuine walk in the expanded
/// graph: correct endpoints, every hop an edge.
#[test]
fn landmark_paths_are_real_walks() {
    let topo = Topology::heavy_hex_65();
    let expanded = ExpandedGraph::new(topo.clone());
    let oracle = DistanceOracle::bare(&expanded, &landmark_config());
    assert_eq!(oracle.mode(), OracleMode::Landmark);

    for (from_unit, to_unit) in [(0, 64), (7, 42), (13, 13), (64, 0)] {
        let from = qompress_arch::Slot::from_index(2 * from_unit);
        let to = qompress_arch::Slot::from_index(2 * to_unit);
        let path = oracle
            .path(from, to)
            .unwrap_or_else(|| panic!("no path {from} -> {to}"));
        assert_eq!(*path.first().unwrap(), from);
        assert_eq!(*path.last().unwrap(), to);
        for pair in path.windows(2) {
            assert!(
                expanded.slots_adjacent(pair[0], pair[1]),
                "path hop {} -> {} is not an edge",
                pair[0],
                pair[1]
            );
        }
    }
}

/// End-to-end: forcing landmark mode on a 65-unit heavy-hex device still
/// produces a valid, deterministic compilation — every emitted two-unit
/// op joins physically adjacent units, and two fresh sessions agree
/// byte-for-byte.
#[test]
fn landmark_mode_compilation_is_valid_and_deterministic() {
    let topo = Topology::heavy_hex_65();
    let adjacency: HashSet<(usize, usize)> = topo
        .edges()
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    let circuit = build(Benchmark::Cuccaro, 10, 7);

    let compile_once = || {
        Compiler::builder()
            .caching(false)
            .config(landmark_config())
            .build()
            .compile(&circuit, &topo, Strategy::QubitOnly)
    };
    let first = compile_once();
    let second = compile_once();
    assert_eq!(
        result_fingerprint(&first),
        result_fingerprint(&second),
        "landmark-mode compilation must be deterministic across sessions"
    );

    assert!(first.metrics.total_eps > 0.0 && first.metrics.total_eps <= 1.0);
    for sop in first.schedule.ops() {
        if let qompress::PhysicalOp::TwoUnit { a, b, .. } = sop.op {
            assert!(
                adjacency.contains(&(a.min(b), a.max(b))),
                "two-unit op joins non-adjacent units {a} and {b}"
            );
        }
    }

    // The session actually used the landmark oracle, and its footprint
    // stayed sublinear: rows for landmarks plus the hot LRU, well below
    // the all-pairs 2n x 2n matrix even on this small device.
    let session = Compiler::builder()
        .caching(false)
        .config(landmark_config())
        .build();
    let _ = session.compile(&circuit, &topo, Strategy::QubitOnly);
    let stats = session.oracle_stats();
    assert!(stats.landmark_oracles >= 1, "{stats:?}");
    assert_eq!(stats.exact_oracles, 0, "{stats:?}");
    assert!(stats.landmark_rows > 0, "{stats:?}");
    let n_slots = 2 * topo.n_nodes();
    let all_pairs_bytes = n_slots * n_slots * 8;
    assert!(
        stats.approx_bytes < all_pairs_bytes / 2,
        "oracle footprint {} not well under all-pairs {}",
        stats.approx_bytes,
        all_pairs_bytes
    );
}

/// At utility scale the landmark footprint is where the design pays off:
/// on the 1121-unit heavy-hex member, servicing distance queries from
/// every unit keeps the oracle under 10% of the all-pairs matrix.
#[test]
fn landmark_footprint_is_under_ten_percent_at_utility_scale() {
    let topo = Topology::heavy_hex(21);
    assert_eq!(topo.n_nodes(), 1121);
    let expanded = ExpandedGraph::new(topo.clone());
    let oracle = DistanceOracle::bare(&expanded, &CompilerConfig::paper());
    assert_eq!(oracle.mode(), OracleMode::Landmark);

    // Query a spread of pairs — estimates from every region plus a few
    // exact front-layer lookups, mirroring the router's access mix.
    let n = topo.n_nodes();
    for step in [1, 97, 311] {
        for i in (0..n).step_by(7) {
            let _ = oracle.distance_idx(2 * i, 2 * ((i + step) % n));
        }
    }
    for i in 0..40 {
        let _ = oracle.distance_exact_idx(2 * i, 2 * ((i + 500) % n));
    }

    let stats = oracle.stats();
    assert!(stats.landmark_rows > 0, "{stats:?}");
    let n_slots = 2 * n;
    let all_pairs_bytes = n_slots * n_slots * 8;
    assert!(
        stats.approx_bytes < all_pairs_bytes / 10,
        "oracle footprint {} not under 10% of all-pairs {}",
        stats.approx_bytes,
        all_pairs_bytes
    );
}

/// On devices the exact threshold covers, the two entry points answer
/// identically — landmark machinery never engages below the threshold.
#[test]
fn exact_mode_never_builds_landmarks() {
    let topo = Topology::heavy_hex_65();
    let oracle = DistanceOracle::over_graph(weighted_graph(&topo), &CompilerConfig::paper());
    assert_eq!(oracle.mode(), OracleMode::Exact);
    for (a, b) in [(0, 64), (12, 33), (5, 5)] {
        assert_eq!(
            oracle.distance_idx(a, b).to_bits(),
            oracle.distance_exact_idx(a, b).to_bits()
        );
    }
    assert!(oracle.landmark_vertices().is_empty());
    let stats = oracle.stats();
    assert_eq!(stats.landmark_rows, 0);
    assert_eq!(stats.exact_oracles, 1);
}
