//! Property-based tests of the whole compilation pipeline: random circuits
//! must compile to valid schedules that are state-equivalent to their
//! logical input, under every strategy and several topologies.

use proptest::prelude::*;
use qompress::{compile, CompilerConfig, PhysicalOp, Strategy as CompileStrategy};
use qompress_arch::Topology;
use qompress_circuit::{Circuit, Gate, SingleQubitKind};
use qompress_sim::{
    apply_internal, apply_merged, apply_single, apply_two_unit, physical_zero_state,
    simulate_logical, states_equivalent, State,
};

/// A random logical gate on `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..n).prop_map(Gate::h),
        (0..n).prop_map(Gate::x),
        (0..n).prop_map(Gate::t),
        ((0..n), -3.0f64..3.0).prop_map(|(q, a)| Gate::rz(a, q)),
        ((0..n), (1..n)).prop_map(move |(a, d)| Gate::cx(a, (a + d) % n)),
        ((0..n), (1..n)).prop_map(move |(a, d)| Gate::swap(a, (a + d) % n)),
    ]
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn apply_physical(state: &mut State, op: &PhysicalOp) {
    match *op {
        PhysicalOp::Single { unit, kind, class } => apply_single(state, unit, kind, class),
        PhysicalOp::Merged { unit, kind0, kind1 } => apply_merged(state, unit, kind0, kind1),
        PhysicalOp::Internal { unit, class } => apply_internal(state, unit, class),
        PhysicalOp::TwoUnit { a, b, class } => apply_two_unit(state, a, b, class),
    }
}

fn check_equivalence(
    circuit: &Circuit,
    topo: &Topology,
    strategy: CompileStrategy,
) -> Result<(), String> {
    let config = CompilerConfig::paper();
    let result = compile(circuit, topo, strategy, &config);
    let problems = result.schedule.validate(topo);
    if !problems.is_empty() {
        return Err(format!("{strategy}: invalid schedule {problems:?}"));
    }
    let logical = simulate_logical(circuit, &vec![0; circuit.n_qubits()]);
    let mut phys = physical_zero_state(topo.n_nodes());
    for sop in result.schedule.ops() {
        apply_physical(&mut phys, &sop.op);
    }
    if !states_equivalent(
        &phys,
        &result.final_placements,
        &result.encoded_units,
        &logical,
        1e-6,
    ) {
        return Err(format!("{strategy}: state mismatch"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_compile_correctly_qubit_only(c in arb_circuit(4, 16)) {
        check_equivalence(&c, &Topology::grid(4), CompileStrategy::QubitOnly)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_circuits_compile_correctly_eqm(c in arb_circuit(4, 16)) {
        check_equivalence(&c, &Topology::grid(4), CompileStrategy::Eqm)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_circuits_compile_correctly_rb(c in arb_circuit(4, 16)) {
        check_equivalence(&c, &Topology::line(4), CompileStrategy::RingBased)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_circuits_compile_correctly_fq(c in arb_circuit(4, 12)) {
        check_equivalence(&c, &Topology::grid(4), CompileStrategy::FullQuquart)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_circuits_on_ring(c in arb_circuit(5, 14)) {
        check_equivalence(&c, &Topology::ring(5), CompileStrategy::Eqm)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn metrics_invariants_hold(c in arb_circuit(5, 20)) {
        let config = CompilerConfig::paper();
        let topo = Topology::grid(5);
        for strategy in [CompileStrategy::QubitOnly, CompileStrategy::Eqm] {
            let r = compile(&c, &topo, strategy, &config);
            let m = &r.metrics;
            prop_assert!(m.gate_eps > 0.0 && m.gate_eps <= 1.0);
            prop_assert!(m.coherence_eps > 0.0 && m.coherence_eps <= 1.0);
            prop_assert!((m.total_eps - m.gate_eps * m.coherence_eps).abs() < 1e-12);
            prop_assert!(m.duration_ns >= 0.0);
            // Total ops account for every logical CX (logical SWAPs are
            // free relabels and emit nothing).
            let cx_count = c
                .iter()
                .filter(|g| matches!(g, Gate::Cx { .. }))
                .count();
            prop_assert!(r.schedule.len() >= cx_count);
            // Communication count never exceeds total ops.
            prop_assert!(m.communication_ops <= m.total_ops());
        }
    }

    #[test]
    fn merged_singles_preserve_op_effects(
        kinds in proptest::collection::vec(
            prop_oneof![
                Just(SingleQubitKind::H),
                Just(SingleQubitKind::X),
                Just(SingleQubitKind::T),
                Just(SingleQubitKind::Z),
            ],
            2..8,
        )
    ) {
        // A circuit of single-qubit gates on a compressed pair must still
        // be equivalent after the X0,1 merge pass.
        let mut c = Circuit::new(2);
        for (i, k) in kinds.iter().enumerate() {
            c.push(Gate::single(*k, i % 2));
        }
        c.push(Gate::cx(0, 1)); // force the pair to matter
        check_equivalence(&c, &Topology::grid(2), CompileStrategy::Eqm)
            .map_err(TestCaseError::fail)?;
    }
}
