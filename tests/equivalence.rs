//! End-to-end correctness: compiled physical circuits must reproduce the
//! logical circuit's state for every strategy, verified with the
//! mixed-radix state-vector simulator.

use qompress::{compile, CompilerConfig, PhysicalOp, Strategy};
use qompress_arch::Topology;
use qompress_circuit::{Circuit, Gate};
use qompress_sim::{
    apply_internal, apply_merged, apply_single, apply_two_unit, physical_zero_state,
    simulate_logical, states_equivalent, State,
};

fn apply_physical(state: &mut State, op: &PhysicalOp) {
    match *op {
        PhysicalOp::Single { unit, kind, class } => apply_single(state, unit, kind, class),
        PhysicalOp::Merged { unit, kind0, kind1 } => apply_merged(state, unit, kind0, kind1),
        PhysicalOp::Internal { unit, class } => apply_internal(state, unit, class),
        PhysicalOp::TwoUnit { a, b, class } => apply_two_unit(state, a, b, class),
    }
}

/// Compiles `circuit` with `strategy` and checks physical/logical state
/// equivalence starting from `|0…0⟩`.
fn assert_equivalent(circuit: &Circuit, topo: &Topology, strategy: Strategy) {
    let config = CompilerConfig::paper();
    let result = compile(circuit, topo, strategy, &config);
    assert!(
        result.schedule.validate(topo).is_empty(),
        "{strategy}: invalid schedule"
    );

    let logical = simulate_logical(circuit, &vec![0; circuit.n_qubits()]);
    let mut phys = physical_zero_state(topo.n_nodes());
    for sop in result.schedule.ops() {
        apply_physical(&mut phys, &sop.op);
    }
    assert!(
        states_equivalent(
            &phys,
            &result.final_placements,
            &result.encoded_units,
            &logical,
            1e-6,
        ),
        "{strategy} on {topo}: compiled state diverges from logical state"
    );
}

/// Same check with a basis-state input realized by prepended X gates.
fn assert_equivalent_with_input(
    circuit: &Circuit,
    topo: &Topology,
    strategy: Strategy,
    input: &[usize],
) {
    let mut prepared = Circuit::new(circuit.n_qubits());
    for (q, &bit) in input.iter().enumerate() {
        if bit == 1 {
            prepared.push(Gate::x(q));
        }
    }
    prepared.extend_from(circuit);
    assert_equivalent(&prepared, topo, strategy);
}

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    for i in 0..n - 1 {
        c.push(Gate::cx(i, i + 1));
    }
    c
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::QubitOnly,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
        Strategy::ProgressivePairing,
        Strategy::FullQuquart,
    ]
}

#[test]
fn ghz_equivalence_all_strategies() {
    let c = ghz(4);
    let topo = Topology::grid(4);
    for strategy in all_strategies() {
        assert_equivalent(&c, &topo, strategy);
    }
}

#[test]
fn triangle_qaoa_equivalence() {
    // Triangle interaction: RB will compress a pair, exercising internal
    // and partial gates.
    let mut c = Circuit::new(3);
    for q in 0..3 {
        c.push(Gate::h(q));
    }
    for (a, b) in [(0, 1), (1, 2), (0, 2)] {
        c.push(Gate::cx(a, b));
        c.push(Gate::z(b));
        c.push(Gate::cx(a, b));
    }
    let topo = Topology::line(3);
    for strategy in all_strategies() {
        assert_equivalent(&c, &topo, strategy);
    }
}

#[test]
fn toffoli_equivalence_on_basis_inputs() {
    let mut c = Circuit::new(3);
    c.push_ccx(0, 1, 2);
    let topo = Topology::grid(3);
    for input in [[0, 0, 0], [1, 1, 0], [1, 0, 1], [1, 1, 1]] {
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            assert_equivalent_with_input(&c, &topo, strategy, &input);
        }
    }
}

#[test]
fn one_bit_adder_equivalence() {
    let c = qompress_workloads::cuccaro_adder(1); // 4 qubits
    let topo = Topology::grid(4);
    for strategy in all_strategies() {
        assert_equivalent(&c, &topo, strategy);
    }
    // 1 + 1: a0 = 1 (qubit 2), b0 = 1 (qubit 1).
    assert_equivalent_with_input(&c, &topo, Strategy::Eqm, &[0, 1, 1, 0]);
    assert_equivalent_with_input(&c, &topo, Strategy::FullQuquart, &[0, 1, 1, 0]);
}

#[test]
fn bv_equivalence() {
    let c = qompress_workloads::bernstein_vazirani(&[true, false, true]);
    let topo = Topology::grid(4);
    for strategy in all_strategies() {
        assert_equivalent(&c, &topo, strategy);
    }
}

#[test]
fn equivalence_with_forced_long_routing() {
    // Interactions spanning a line force many swaps; verify bookkeeping
    // survives heavy communication.
    let mut c = Circuit::new(5);
    c.push(Gate::h(0));
    c.push(Gate::cx(0, 4));
    c.push(Gate::cx(4, 1));
    c.push(Gate::cx(1, 3));
    c.push(Gate::cx(3, 0));
    let topo = Topology::line(5);
    for strategy in [Strategy::QubitOnly, Strategy::Eqm] {
        assert_equivalent(&c, &topo, strategy);
    }
}

#[test]
fn equivalence_on_ring_topology() {
    let c = ghz(5);
    let topo = Topology::ring(5);
    for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::Awe] {
        assert_equivalent(&c, &topo, strategy);
    }
}

#[test]
fn exhaustive_compilation_is_equivalent() {
    let mut c = Circuit::new(4);
    for _ in 0..5 {
        c.push(Gate::cx(0, 1));
    }
    c.push(Gate::h(2));
    c.push(Gate::cx(2, 3));
    c.push(Gate::cx(1, 2));
    let topo = Topology::grid(4);
    assert_equivalent(&c, &topo, Strategy::Exhaustive { ordered: true });
}

#[test]
fn random_circuits_differential_under_every_strategy() {
    // Seeded 3-5 qubit circuits from the QASM frontend's generator (mixing
    // every 1q kind, CX and logical SWAP), compiled under *every* strategy
    // including the exhaustive search, must preserve logical semantics —
    // not just the structured benchmark happy paths.
    for seed in 0..6u64 {
        let n = 3 + (seed as usize % 3);
        let c = qompress_qasm::random_circuit(n, 16, seed);
        let topo = Topology::grid(n);
        for strategy in qompress::ALL_STRATEGIES {
            assert_equivalent(&c, &topo, strategy);
        }
    }
}

#[test]
fn random_circuits_differential_on_line_and_ring() {
    // Sparser connectivity forces real routing; spot-check the partial
    // strategies away from the grid.
    for seed in 10..13u64 {
        let c = qompress_qasm::random_circuit(4, 14, seed);
        for topo in [Topology::line(4), Topology::ring(4)] {
            for strategy in [
                Strategy::QubitOnly,
                Strategy::Eqm,
                Strategy::RingBased,
                Strategy::Awe,
                Strategy::ProgressivePairing,
            ] {
                assert_equivalent(&c, &topo, strategy);
            }
        }
    }
}

#[test]
fn qasm_round_trip_compiles_identically() {
    // Frontend integration: a circuit that has passed through QASM text
    // must compile to the same schedule and metrics as the original.
    let config = CompilerConfig::paper();
    for seed in 0..3u64 {
        let c = qompress_qasm::random_circuit(5, 20, seed);
        let reparsed = qompress_qasm::parse_qasm(&qompress_qasm::to_qasm(&c)).unwrap();
        assert_eq!(c, reparsed);
        let topo = Topology::grid(5);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::Awe] {
            let a = compile(&c, &topo, strategy, &config);
            let b = compile(&reparsed, &topo, strategy, &config);
            assert_eq!(a.metrics, b.metrics, "{strategy}");
            assert_eq!(
                format!("{:?}", a.schedule),
                format!("{:?}", b.schedule),
                "{strategy}"
            );
        }
    }
}

#[test]
fn random_circuits_equivalent_under_eqm() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 5;
        let mut c = Circuit::new(n);
        for _ in 0..20 {
            match rng.gen_range(0..4) {
                0 => c.push(Gate::h(rng.gen_range(0..n))),
                1 => c.push(Gate::t(rng.gen_range(0..n))),
                2 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    c.push(Gate::cx(a, b));
                }
                _ => c.push(Gate::rz(0.37 * (seed as f64 + 1.0), rng.gen_range(0..n))),
            }
        }
        let topo = Topology::grid(5);
        assert_equivalent(&c, &topo, Strategy::Eqm);
        assert_equivalent(&c, &topo, Strategy::QubitOnly);
    }
}
