//! Session-cache correctness: a `Compiler` with result caching on must be
//! observationally identical to one with caching off — the cache may only
//! ever change *when* work happens, never *what* comes out — and its
//! `CacheStats` must count exactly.

use proptest::prelude::*;
use qompress::{BatchJob, CacheStats, CompilationResult, Compiler, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_workloads::random_circuit;

/// Renders every observable field of a compilation, so "byte-identical"
/// is a literal string comparison (the same helper shape as
/// `tests/batch_parallel.rs`).
fn render(r: &CompilationResult) -> String {
    format!(
        "{}\nmetrics: {:?}\nschedule: {:?}\nplacements: {:?} -> {:?}\nencoded: {:?}\npairs: {:?}\ngates: {}\ntrace: {:?}\n",
        r.strategy,
        r.metrics,
        r.schedule,
        r.initial_placements,
        r.final_placements,
        r.encoded_units,
        r.pairs,
        r.logical_gates,
        r.trace,
    )
}

fn strategy_from_index(i: usize) -> Strategy {
    [
        Strategy::QubitOnly,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
        Strategy::ProgressivePairing,
    ][i % 5]
}

fn topology_from_index(i: usize, n: usize) -> Topology {
    match i % 3 {
        0 => Topology::grid(n),
        1 => Topology::line(n),
        _ => Topology::ring(n.max(3)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_equals_uncached_on_random_jobs(
        n in 3usize..6,
        gates in 6usize..20,
        seed in 0u64..500,
        strategy_idx in 0usize..5,
        topo_idx in 0usize..3,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let topo = topology_from_index(topo_idx, n);
        let strategy = strategy_from_index(strategy_idx);

        // verify_hits additionally recompiles on every hit and asserts
        // byte-identity inside the session itself.
        let cached = Compiler::builder().verify_hits(true).build();
        let uncached = Compiler::builder().caching(false).build();

        let warm = cached.compile(&circuit, &topo, strategy);
        let hit = cached.compile(&circuit, &topo, strategy);
        let fresh = uncached.compile(&circuit, &topo, strategy);

        prop_assert_eq!(render(&warm), render(&fresh));
        prop_assert_eq!(render(&hit), render(&fresh));
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(uncached.cache_stats(), CacheStats::default());
    }
}

#[test]
fn stats_count_exactly_on_a_repeated_three_job_sequence() {
    let session = Compiler::builder().workers(1).build();
    let jobs: [(Topology, Strategy); 3] = [
        (Topology::grid(5), Strategy::Eqm),
        (Topology::grid(5), Strategy::QubitOnly),
        (Topology::line(5), Strategy::RingBased),
    ];
    let circuit = random_circuit(5, 18, 11);

    // Pass 1: three distinct jobs, three misses, nothing to hit.
    for (topo, strategy) in &jobs {
        let _ = session.compile(&circuit, topo, *strategy);
    }
    assert_eq!(
        session.cache_stats(),
        CacheStats {
            hits: 0,
            misses: 3,
            evictions: 0
        }
    );

    // Passes 2 and 3: every job repeats, every lookup hits.
    for _ in 0..2 {
        for (topo, strategy) in &jobs {
            let _ = session.compile(&circuit, topo, *strategy);
        }
    }
    let stats = session.cache_stats();
    assert_eq!(
        stats,
        CacheStats {
            hits: 6,
            misses: 3,
            evictions: 0
        }
    );
    assert!((stats.hit_rate() - 6.0 / 9.0).abs() < 1e-12);
    assert_eq!(session.cached_results(), 3);
    // grid-5 and line-5 only — the registry dedupes the repeats.
    assert_eq!(session.registered_topologies(), 2);
}

/// The acceptance pin: a repeated-job sweep through `compile_batch` must
/// report cache hits > 0 and be byte-identical to the same sweep with
/// caching disabled.
#[test]
fn repeated_batch_sweep_hits_and_stays_byte_identical() {
    // A duplicate-topology sweep where half the jobs are exact repeats.
    let mut jobs = Vec::new();
    for seed in 0..2u64 {
        let circuit = random_circuit(6, 20, seed);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::Awe] {
            jobs.push(BatchJob::new(
                format!("seed{seed}-{}", strategy.name()),
                circuit.clone(),
                strategy,
                Topology::grid(6),
            ));
        }
    }
    let repeats = jobs.clone();
    jobs.extend(repeats);

    let cached = Compiler::builder().verify_hits(true).workers(4).build();
    let uncached = Compiler::builder().caching(false).workers(4).build();
    let with_cache = cached.compile_batch(&jobs);
    let without_cache = uncached.compile_batch(&jobs);

    assert!(
        with_cache.cache.hits > 0,
        "repeated sweep must hit the cache: {:?}",
        with_cache.cache
    );
    assert_eq!(
        with_cache.cache.hits + with_cache.cache.misses,
        jobs.len() as u64
    );
    assert_eq!(without_cache.cache, CacheStats::default());

    for (a, b) in with_cache.results.iter().zip(&without_cache.results) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.job_index, b.job_index);
        assert_eq!(render(&a.result), render(&b.result), "{}", a.label);
    }
}

#[test]
fn session_outlives_batches_and_keeps_hitting() {
    // The session advantage over `run_batch`: caches persist across
    // batches, so resubmitting a sweep is pure hits.
    let circuit = random_circuit(5, 16, 3);
    let jobs: Vec<BatchJob> = [Strategy::QubitOnly, Strategy::Eqm]
        .into_iter()
        .map(|s| BatchJob::new(s.name(), circuit.clone(), s, Topology::grid(5)))
        .collect();

    let session = Compiler::builder().workers(2).build();
    let first = session.compile_batch(&jobs);
    assert_eq!(first.cache.hits, 0);
    assert_eq!(first.cache.misses, jobs.len() as u64);

    let second = session.compile_batch(&jobs);
    assert_eq!(second.cache.hits, jobs.len() as u64);
    assert_eq!(second.cache.misses, 0);
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(render(&a.result), render(&b.result));
    }
}

#[test]
fn exhaustive_strategy_memoizes_candidates_in_the_session_cache() {
    // A strategy-level EC compile runs the §5.1 search *through* the
    // session: its per-candidate (circuit, pair-set) evaluations land in
    // the result cache (misses), each round's post-commit recompile is a
    // hit, and a repeated sweep recompiles nothing at all.
    let circuit = {
        let mut c = qompress_circuit::Circuit::new(4);
        for _ in 0..10 {
            c.push(qompress_circuit::Gate::cx(0, 1));
        }
        c.push(qompress_circuit::Gate::cx(1, 2));
        c.push(qompress_circuit::Gate::cx(2, 3));
        c
    };
    let topo = Topology::grid(4);
    let strategy = Strategy::Exhaustive { ordered: true };

    let session = Compiler::builder().build();
    let first = session.compile(&circuit, &topo, strategy);
    let after_first = session.cache_stats();
    assert!(
        after_first.misses > 1,
        "candidate evaluations must be cached individually: {after_first:?}"
    );
    assert!(
        after_first.hits > 0,
        "post-commit recompiles must hit: {after_first:?}"
    );

    let replay = session.compile(&circuit, &topo, strategy);
    let after_replay = session.cache_stats();
    assert_eq!(
        after_replay.misses, after_first.misses,
        "the repeated sweep must be pure hits"
    );
    assert!(after_replay.hits > after_first.hits);
    assert_eq!(render(&first), render(&replay));

    // And the whole search stays observationally identical to a
    // caching-off session.
    let uncached = Compiler::builder().caching(false).build();
    let fresh = uncached.compile(&circuit, &topo, strategy);
    assert_eq!(render(&first), render(&fresh));
}

#[test]
fn free_functions_agree_with_session_methods() {
    // The demoted compatibility wrappers must return exactly what the
    // session returns.
    let config = CompilerConfig::paper();
    let circuit = random_circuit(5, 15, 9);
    let topo = Topology::grid(5);
    let session = Compiler::with_config(&config);
    for strategy in qompress::ALL_STRATEGIES {
        let via_free = qompress::compile(&circuit, &topo, strategy, &config);
        let via_session = session.compile(&circuit, &topo, strategy);
        assert_eq!(render(&via_free), render(&via_session), "{strategy}");
    }
}
