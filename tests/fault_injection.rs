//! Fault-injection coverage for the self-healing cache tiers: an
//! unopenable cache dir degrades the session to memory-only instead of
//! aborting, write-back failures (disk full, permission denied) never
//! fail a compile, the disk-tier circuit breaker trips after consecutive
//! I/O errors and recovers through a half-open probe, a torn write is
//! caught on the next load, and `try_compile_batch` isolates per-job
//! failures that `compile_batch` still turns into the historical panic.

use qompress::{
    BatchJob, BreakerState, CompilationResult, Compiler, FaultKind, FaultOp, FaultPlan, Strategy,
};
use qompress_arch::Topology;
use qompress_workloads::{build, random_circuit, Benchmark};
use std::path::PathBuf;
use std::time::Duration;

/// A per-test directory under the Cargo-managed tmp root (inside
/// `target/`), recreated empty so reruns start clean.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    // A prior run may have left either a directory or a blocker *file*
    // (see `unopenable_dir`) at this path — clear both shapes.
    if dir.is_dir() {
        std::fs::remove_dir_all(&dir).expect("clear test dir");
    } else if dir.exists() {
        std::fs::remove_file(&dir).expect("clear blocker file");
    }
    dir
}

/// A path that can never be opened as a directory: a child of a regular
/// file. (Permission tricks don't work here — the suite may run as
/// root, which ignores mode bits.)
fn unopenable_dir(name: &str) -> PathBuf {
    let blocker = fresh_dir(name);
    std::fs::create_dir_all(blocker.parent().expect("tmp root")).expect("tmp root exists");
    std::fs::write(&blocker, b"not a directory").expect("plant blocker file");
    blocker.join("cache")
}

/// Renders every observable field, so "identical result" is a literal
/// string comparison.
fn render(r: &CompilationResult) -> String {
    format!(
        "{}\nmetrics: {:?}\nschedule: {:?}\nplacements: {:?} -> {:?}\nencoded: {:?}\npairs: {:?}\ngates: {}\ntrace: {:?}\n",
        r.strategy,
        r.metrics,
        r.schedule,
        r.initial_placements,
        r.final_placements,
        r.encoded_units,
        r.pairs,
        r.logical_gates,
        r.trace,
    )
}

#[test]
fn unopenable_cache_dir_degrades_to_memory_only() {
    let dir = unopenable_dir("fault_degrade_blocker");
    let session = Compiler::builder().workers(1).persist_dir(&dir).build();

    assert!(
        !session.persistence_enabled(),
        "unopenable dir must disable the disk tier, not abort"
    );
    let diagnostics = session.diagnostics();
    assert_eq!(diagnostics.len(), 1, "exactly one degradation diagnostic");
    assert!(
        diagnostics[0].contains("persistent cache disabled"),
        "diagnostic names the degradation: {}",
        diagnostics[0]
    );
    assert!(
        diagnostics[0].contains("persist_strict"),
        "diagnostic points at the fail-fast opt-in: {}",
        diagnostics[0]
    );

    // The session still compiles and caches in memory.
    let circuit = random_circuit(4, 12, 3);
    let _ = session.compile(&circuit, &Topology::grid(4), Strategy::Eqm);
    let _ = session.compile(&circuit, &Topology::grid(4), Strategy::Eqm);
    let stats = session.tiered_cache_stats();
    assert_eq!(stats.memory_hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.disk_writes, 0);
    assert_eq!(stats.breaker_state, BreakerState::Closed);
}

#[test]
#[should_panic(expected = "cannot open persistent cache")]
fn persist_strict_restores_the_fail_fast_contract() {
    let dir = unopenable_dir("fault_strict_blocker");
    let _ = Compiler::builder()
        .workers(1)
        .persist_dir(&dir)
        .persist_strict(true)
        .build();
}

#[test]
fn healthy_sessions_report_no_diagnostics() {
    let session = Compiler::builder().workers(1).build();
    assert!(session.diagnostics().is_empty());
    let dir = fresh_dir("fault_healthy_diag");
    let session = Compiler::builder().workers(1).persist_dir(&dir).build();
    assert!(session.diagnostics().is_empty());
    assert!(session.persistence_enabled());
}

#[test]
fn disk_full_write_back_never_fails_a_compile() {
    let dir = fresh_dir("fault_disk_full");
    let faults = FaultPlan::always(FaultKind::DiskFull).on_ops(&[FaultOp::Store]);
    let clean = {
        let session = Compiler::builder().workers(1).build();
        render(&session.compile(
            &random_circuit(4, 12, 17),
            &Topology::grid(4),
            Strategy::Awe,
        ))
    };

    let session = Compiler::builder()
        .workers(1)
        .persist_dir(&dir)
        .persist_faults(faults.clone())
        .build();
    let got = session.compile(
        &random_circuit(4, 12, 17),
        &Topology::grid(4),
        Strategy::Awe,
    );
    assert_eq!(render(&got), clean, "a full disk must not change results");

    let stats = session.tiered_cache_stats();
    assert_eq!(stats.disk_writes, 0, "nothing lands on a full disk");
    assert_eq!(stats.disk_write_errors, 1, "but the failure is counted");
    assert_eq!(
        stats.breaker_state,
        BreakerState::Closed,
        "one failure is below threshold"
    );
    assert!(faults.injected() >= 1);

    // Heal the disk: the next distinct compile writes back normally.
    faults.heal();
    let _ = session.compile(
        &random_circuit(4, 12, 18),
        &Topology::grid(4),
        Strategy::Awe,
    );
    let stats = session.tiered_cache_stats();
    assert_eq!(
        stats.disk_writes, 1,
        "healed disk accepts write-backs again"
    );
}

#[test]
fn permission_denied_write_back_never_fails_a_compile() {
    let dir = fresh_dir("fault_perm_denied");
    let faults = FaultPlan::always(FaultKind::PermissionDenied).on_ops(&[FaultOp::Store]);
    let session = Compiler::builder()
        .workers(1)
        .persist_dir(&dir)
        .persist_faults(faults)
        .build();

    let circuit = random_circuit(5, 14, 29);
    let _ = session.compile(&circuit, &Topology::line(5), Strategy::QubitOnly);
    let stats = session.tiered_cache_stats();
    assert_eq!(stats.disk_writes, 0);
    assert_eq!(stats.disk_write_errors, 1);
    // The result is still served — from memory — on the next lookup.
    let _ = session.compile(&circuit, &Topology::line(5), Strategy::QubitOnly);
    assert_eq!(session.tiered_cache_stats().memory_hits, 1);
}

#[test]
fn breaker_trips_after_consecutive_errors_and_skips_the_disk() {
    let dir = fresh_dir("fault_breaker_trip");
    let faults = FaultPlan::always(FaultKind::Io);
    // A cooldown far beyond the test's runtime makes "stays open" exact.
    let session = Compiler::builder()
        .workers(1)
        .persist_dir(&dir)
        .persist_faults(faults)
        .persist_breaker(2, Duration::from_secs(600))
        .build();

    // First compile: the tier-2 load fails (streak 1), then the
    // write-back fails (streak 2) — the breaker trips.
    let _ = session.compile(
        &random_circuit(4, 12, 41),
        &Topology::grid(4),
        Strategy::Eqm,
    );
    let stats = session.tiered_cache_stats();
    assert_eq!(stats.disk_read_errors, 1);
    assert_eq!(stats.disk_write_errors, 1);
    assert_eq!(
        stats.breaker_trips, 1,
        "two consecutive errors trip the breaker"
    );
    assert_eq!(stats.breaker_state, BreakerState::Open);

    // While open, the disk is skipped entirely — no new error counts.
    let _ = session.compile(
        &random_circuit(4, 12, 42),
        &Topology::grid(4),
        Strategy::Eqm,
    );
    let stats = session.tiered_cache_stats();
    assert_eq!(stats.disk_skipped, 2, "load and write-back both skipped");
    assert_eq!(stats.disk_read_errors, 1, "no disk op, no new read error");
    assert_eq!(stats.disk_write_errors, 1);
    assert_eq!(stats.breaker_probes, 0, "cooldown has not elapsed");
    assert_eq!(stats.breaker_state, BreakerState::Open);
}

#[test]
fn breaker_recovers_through_a_half_open_probe() {
    let dir = fresh_dir("fault_breaker_recover");
    let faults = FaultPlan::always(FaultKind::Io).on_ops(&[FaultOp::Store]);
    let cooldown = Duration::from_millis(50);
    let session = Compiler::builder()
        .workers(1)
        .persist_dir(&dir)
        .persist_faults(faults.clone())
        .persist_breaker(1, cooldown)
        .build();

    // Trip: threshold 1 means the first write-back failure opens it.
    let _ = session.compile(
        &random_circuit(4, 12, 53),
        &Topology::grid(4),
        Strategy::Eqm,
    );
    let stats = session.tiered_cache_stats();
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(stats.breaker_state, BreakerState::Open);

    // Heal the disk and wait out the cooldown: the next disk op is a
    // half-open probe, it succeeds, and the breaker closes.
    faults.heal();
    std::thread::sleep(cooldown + Duration::from_millis(100));
    let _ = session.compile(
        &random_circuit(4, 12, 54),
        &Topology::grid(4),
        Strategy::Eqm,
    );
    let stats = session.tiered_cache_stats();
    assert!(stats.breaker_probes >= 1, "recovery goes through a probe");
    assert_eq!(stats.breaker_state, BreakerState::Closed);
    assert_eq!(stats.breaker_trips, 1, "no re-trip after healing");
    assert_eq!(stats.disk_writes, 1, "the healed write-back landed");
}

#[test]
fn torn_write_is_caught_on_the_next_load() {
    let dir = fresh_dir("fault_torn_write");
    let circuit = random_circuit(4, 12, 67);
    let topo = Topology::grid(4);

    let clean = {
        let session = Compiler::builder().workers(1).build();
        render(&session.compile(&circuit, &topo, Strategy::ProgressivePairing))
    };

    // Session A's write is torn: the disk "succeeds" but truncates.
    {
        let faults = FaultPlan::first(1, FaultKind::TornWrite).on_ops(&[FaultOp::Store]);
        let a = Compiler::builder()
            .workers(1)
            .persist_dir(&dir)
            .persist_faults(faults)
            .build();
        let _ = a.compile(&circuit, &topo, Strategy::ProgressivePairing);
        let stats = a.tiered_cache_stats();
        assert_eq!(stats.disk_writes, 1, "a torn write looks like a success");
        assert_eq!(stats.disk_write_errors, 0);
    }

    // Session B rejects the truncated envelope and recompiles — byte
    // identical to a clean run — then writes a sound replacement.
    let b = Compiler::builder().workers(1).persist_dir(&dir).build();
    let recompiled = b.compile(&circuit, &topo, Strategy::ProgressivePairing);
    let stats = b.tiered_cache_stats();
    assert_eq!(stats.disk_hits, 0, "truncated entry must not be served");
    assert_eq!(stats.disk_rejects, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(render(&recompiled), clean);
    drop(b);

    let c = Compiler::builder().workers(1).persist_dir(&dir).build();
    let served = c.compile(&circuit, &topo, Strategy::ProgressivePairing);
    assert_eq!(
        c.tiered_cache_stats().disk_hits,
        1,
        "replacement entry serves"
    );
    assert_eq!(render(&served), clean);
}

#[test]
fn try_compile_batch_isolates_per_job_failures() {
    let session = Compiler::builder().workers(1).build();
    let jobs = vec![
        BatchJob::new(
            "fine",
            build(Benchmark::Cuccaro, 5, 7),
            Strategy::Eqm,
            Topology::grid(5),
        ),
        BatchJob::new(
            "too-big",
            build(Benchmark::Cuccaro, 6, 7),
            Strategy::QubitOnly,
            Topology::line(2),
        ),
        BatchJob::new(
            "also-fine",
            build(Benchmark::Cuccaro, 4, 7),
            Strategy::Awe,
            Topology::grid(4),
        ),
    ];

    let batch = session.try_compile_batch(&jobs);
    assert_eq!(batch.results.len(), 3, "every job reports, in input order");
    assert_eq!(batch.succeeded(), 2);
    assert_eq!(batch.failed(), 1);

    let ok = batch.results[0].as_ref().expect("first job succeeds");
    assert_eq!((ok.label.as_str(), ok.job_index), ("fine", 0));
    let failure = batch.results[1].as_ref().expect_err("oversized job fails");
    assert_eq!((failure.label.as_str(), failure.job_index), ("too-big", 1));
    let rendered = failure.to_string();
    assert!(
        rendered.starts_with("batch job `too-big` panicked: "),
        "failure display carries the job identity and panic message: {rendered}"
    );
    let ok = batch.results[2]
        .as_ref()
        .expect("job after the failure still runs");
    assert_eq!((ok.label.as_str(), ok.job_index), ("also-fine", 2));

    // Failures never poison the session: it keeps compiling.
    let _ = session.compile(
        &random_circuit(4, 10, 71),
        &Topology::grid(4),
        Strategy::Eqm,
    );
}

#[test]
fn try_compile_batch_matches_compile_batch_results() {
    let jobs: Vec<BatchJob> = (0..4)
        .map(|i| {
            BatchJob::new(
                format!("job-{i}"),
                random_circuit(4, 10 + i, i as u64),
                Strategy::Eqm,
                Topology::grid(4),
            )
        })
        .collect();

    let panicking = Compiler::builder().workers(2).caching(false).build();
    let fallible = Compiler::builder().workers(2).caching(false).build();
    let expected = panicking.compile_batch(&jobs);
    let got = fallible.try_compile_batch(&jobs);
    assert_eq!(got.distinct_topologies, expected.distinct_topologies);
    for (a, b) in expected.results.iter().zip(&got.results) {
        let b = b.as_ref().expect("all jobs placeable");
        assert_eq!(a.label, b.label);
        assert_eq!(render(&a.result), render(&b.result));
    }
}

#[test]
#[should_panic(expected = "batch job `too-big` panicked")]
fn compile_batch_preserves_the_historical_panic() {
    let session = Compiler::builder().workers(1).build();
    let jobs = vec![BatchJob::new(
        "too-big",
        build(Benchmark::Cuccaro, 6, 7),
        Strategy::QubitOnly,
        Topology::line(2),
    )];
    let _ = session.compile_batch(&jobs);
}
