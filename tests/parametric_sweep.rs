//! Parametric skeleton compilation, end to end: stamped sweep results are
//! byte-identical to compiling each bound circuit directly — across every
//! strategy and the line/grid/ring topologies — and the skeleton cache
//! does exactly one structural compile per sweep.

use proptest::prelude::*;
use qompress::{BatchJob, CacheStats, Compiler, ParamSweep, Strategy, ALL_STRATEGIES};
use qompress_arch::Topology;
use qompress_circuit::{ParametricCircuit, RotationAxis};
use qompress_qasm::random_parametric_circuit;

/// Angle vectors for a skeleton with `n_params` parameters, derived
/// deterministically from `salt`.
fn bindings_for(skeleton: &ParametricCircuit, count: usize, salt: f64) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..skeleton.n_params())
                .map(|p| salt + 0.7 * i as f64 - 0.31 * p as f64)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `compile_sweep(skeleton, bindings)` must produce, per binding, the
    /// byte-identical result of `compile(skeleton.bind(angles))` on an
    /// independent uncached session — for random skeletons under every
    /// strategy (including exhaustive) and topology family.
    #[test]
    fn stamped_sweep_results_equal_direct_compiles(
        n in 3usize..6,
        gates in 1usize..22,
        params in 0usize..4,
        seed in 0u64..10_000,
        strategy_idx in 0usize..ALL_STRATEGIES.len(),
        topo_idx in 0usize..3,
        raw_angles in proptest::collection::vec(-3.15f64..3.15, 8),
    ) {
        let skeleton = random_parametric_circuit(n, gates, params, seed);
        let topo = match topo_idx {
            0 => Topology::line(n),
            1 => Topology::grid(n),
            _ => Topology::ring(n),
        };
        let strategy = ALL_STRATEGIES[strategy_idx];
        let bindings = vec![
            raw_angles[..skeleton.n_params()].to_vec(),
            raw_angles[4..4 + skeleton.n_params()].to_vec(),
        ];

        let session = Compiler::new();
        let swept = session.compile_sweep(&skeleton, &topo, strategy, &bindings);
        prop_assert_eq!(swept.results.len(), bindings.len());
        let reference = Compiler::builder().caching(false).build();
        for (stamped, angles) in swept.results.iter().zip(&bindings) {
            let direct = reference.compile(&skeleton.bind(angles), &topo, strategy);
            prop_assert_eq!(
                format!("{:?}", **stamped),
                format!("{:?}", *direct),
                "strategy {} on {}", strategy.name(), topo.name()
            );
        }
    }
}

#[test]
fn sweep_cache_stats_are_exact() {
    let session = Compiler::new();
    let skeleton = random_parametric_circuit(5, 30, 3, 11);
    assert!(skeleton.site_count() > 0, "fixture must have live sites");
    let topo = Topology::grid(5);
    let bindings = bindings_for(&skeleton, 8, 0.25);

    // Cold sweep: exactly one structural compile, every other binding a
    // skeleton-cache hit.
    let cold = session.compile_sweep(&skeleton, &topo, Strategy::Eqm, &bindings);
    assert_eq!(
        (cold.skeleton_cache.misses, cold.skeleton_cache.hits),
        (1, bindings.len() as u64 - 1)
    );
    // Warm sweep over the same structure: zero compiles.
    let warm = session.compile_sweep(&skeleton, &topo, Strategy::Eqm, &bindings);
    assert_eq!(
        (warm.skeleton_cache.misses, warm.skeleton_cache.hits),
        (0, bindings.len() as u64)
    );
    assert_eq!(session.skeleton_cache_stats().misses, 1);
    // Different parameter *values* never re-key the skeleton; a different
    // strategy does.
    let other_values = session.compile_sweep(
        &skeleton,
        &topo,
        Strategy::Eqm,
        &bindings_for(&skeleton, 2, 1.75),
    );
    assert_eq!(other_values.skeleton_cache.misses, 0);
    let other_strategy =
        session.compile_sweep(&skeleton, &topo, Strategy::QubitOnly, &bindings[..2]);
    assert_eq!(other_strategy.skeleton_cache.misses, 1);

    // Stamped results are byte-identical to direct compiles, and the
    // sweep never touched the concrete result cache.
    let reference = Compiler::builder().caching(false).build();
    for (stamped, angles) in cold.results.iter().zip(&bindings) {
        let direct = reference.compile(&skeleton.bind(angles), &topo, Strategy::Eqm);
        assert_eq!(format!("{:?}", **stamped), format!("{:?}", *direct));
    }
    assert_eq!(session.cache_stats(), CacheStats::default());
}

#[test]
fn sweep_jobs_through_the_job_service_stamp_instead_of_recompiling() {
    let session = Compiler::builder().workers(2).build();
    let skeleton = random_parametric_circuit(4, 24, 2, 7);
    let topo = Topology::grid(4);
    let bindings = bindings_for(&skeleton, 6, 0.4);

    let sweep = ParamSweep::new(skeleton.clone());
    let jobs: Vec<BatchJob> = bindings
        .iter()
        .enumerate()
        .map(|(i, angles)| sweep.job(format!("bind-{i}"), Strategy::Eqm, topo.clone(), angles))
        .collect();
    let out = session.compile_batch(&jobs);

    // All jobs of one `ParamSweep` share a single artifact slot: exactly
    // one structural compile, and the concrete result cache is bypassed
    // entirely (stamped results are never inserted).
    assert_eq!(
        (out.cache.hits, out.cache.misses),
        (0, 0),
        "sweep jobs must not touch the concrete cache"
    );
    let sk = session.skeleton_cache_stats();
    assert_eq!((sk.misses, sk.hits), (1, 0));

    let reference = Compiler::builder().caching(false).build();
    for (job_result, angles) in out.results.iter().zip(&bindings) {
        let direct = reference.compile(&skeleton.bind(angles), &topo, Strategy::Eqm);
        assert_eq!(
            format!("{:?}", *job_result.result),
            format!("{:?}", *direct),
            "{}",
            job_result.label
        );
    }
}

#[test]
fn caching_disabled_sweep_still_compiles_structure_once_per_call() {
    let session = Compiler::builder().caching(false).build();
    let skeleton = random_parametric_circuit(4, 18, 2, 3);
    let topo = Topology::line(4);
    let bindings = bindings_for(&skeleton, 5, 0.9);
    let swept = session.compile_sweep(&skeleton, &topo, Strategy::FullQuquart, &bindings);
    // No cache => no counters, but the hoisted artifact still serves the
    // whole call and every result matches a direct compile.
    assert_eq!(swept.skeleton_cache, CacheStats::default());
    let reference = Compiler::builder().caching(false).build();
    for (stamped, angles) in swept.results.iter().zip(&bindings) {
        let direct = reference.compile(&skeleton.bind(angles), &topo, Strategy::FullQuquart);
        assert_eq!(format!("{:?}", **stamped), format!("{:?}", *direct));
    }
}

#[test]
#[should_panic(expected = "not finite")]
fn sweep_rejects_non_finite_angles() {
    let session = Compiler::new();
    let mut skeleton = ParametricCircuit::new(3);
    skeleton.push_param(RotationAxis::Rz, 0, 1);
    let _ = session.compile_sweep(
        &skeleton,
        &Topology::line(3),
        Strategy::Eqm,
        &[vec![f64::NAN]],
    );
}
