//! Happy-path coverage of the compile→route→schedule pipeline: a small
//! deterministic Cuccaro adder compiled with every strategy (including
//! exhaustive search on this tiny instance) must produce a valid schedule,
//! finite gate/depth metrics, and — for the compressing strategies — no
//! more two-qubit communication than the qubit-only baseline.

use qompress::{compile, CompilationResult, Compiler, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use qompress_workloads::cuccaro_sized;
use std::sync::OnceLock;

/// One shared session for the suite: the 8-qubit adder baseline repeats
/// across tests and comes back as verified cache hits.
fn session() -> &'static Compiler {
    static SESSION: OnceLock<Compiler> = OnceLock::new();
    SESSION.get_or_init(|| Compiler::builder().verify_hits(true).build())
}

/// The compressing strategies under test, in the paper's order (§5).
const COMPRESSING: [Strategy; 5] = [
    Strategy::FullQuquart,
    Strategy::ProgressivePairing,
    Strategy::RingBased,
    Strategy::Awe,
    Strategy::Exhaustive { ordered: true },
];

/// The *partial*-compression strategies Qompress contributes (§5) — i.e.
/// [`COMPRESSING`] minus the prior-work full-ququart baseline, whose whole
/// point in the evaluation (§6.2) is that it does NOT reduce communication.
const PARTIAL: [Strategy; 4] = [
    Strategy::ProgressivePairing,
    Strategy::RingBased,
    Strategy::Awe,
    Strategy::Exhaustive { ordered: true },
];

fn small_adder() -> Circuit {
    // 8 logical qubits (a 2-bit Cuccaro adder with carry in/out): small
    // enough that exhaustive search stays fast, large enough to route.
    cuccaro_sized(8)
}

fn check_result(label: &str, r: &CompilationResult, topo: &Topology) {
    let problems = r.schedule.validate(topo);
    assert!(
        problems.is_empty(),
        "{label}: invalid schedule: {problems:?}"
    );
    assert!(!r.schedule.is_empty(), "{label}: empty schedule");

    let m = &r.metrics;
    assert!(
        m.gate_eps.is_finite() && m.gate_eps > 0.0 && m.gate_eps <= 1.0,
        "{label}: gate EPS {}",
        m.gate_eps
    );
    assert!(
        m.coherence_eps.is_finite() && m.coherence_eps > 0.0 && m.coherence_eps <= 1.0,
        "{label}: coherence EPS {}",
        m.coherence_eps
    );
    assert!(
        (m.total_eps - m.gate_eps * m.coherence_eps).abs() < 1e-12,
        "{label}: total EPS is not the product of its factors"
    );
    assert!(
        m.duration_ns.is_finite() && m.duration_ns > 0.0,
        "{label}: duration {}",
        m.duration_ns
    );
    assert!(
        m.communication_ops <= m.total_ops(),
        "{label}: comm ops exceed total ops"
    );
    let counted: usize = m.gate_counts.values().sum();
    assert_eq!(
        counted,
        r.schedule.len(),
        "{label}: gate counts disagree with schedule"
    );
}

#[test]
fn every_strategy_compiles_the_adder_with_finite_metrics() {
    let circuit = small_adder();
    let topo = Topology::grid(circuit.n_qubits());

    let baseline = session().compile(&circuit, &topo, Strategy::QubitOnly);
    check_result("qubit-only", &baseline, &topo);
    assert!(baseline.pairs.is_empty(), "baseline must not compress");

    for strategy in COMPRESSING {
        let r = session().compile(&circuit, &topo, strategy);
        check_result(strategy.name(), &r, &topo);
    }
}

#[test]
fn compression_reduces_two_qubit_communication() {
    let circuit = small_adder();
    let topo = Topology::grid(circuit.n_qubits());

    let baseline = session().compile(&circuit, &topo, Strategy::QubitOnly);
    assert!(
        baseline.metrics.communication_ops > 0,
        "the adder on a grid must need routing for the comparison to mean anything"
    );

    let mut strictly_better = 0usize;
    for strategy in PARTIAL {
        let r = session().compile(&circuit, &topo, strategy);
        // Communication the paper counts: SWAP family plus ENC/DEC. A
        // partial-compression strategy may pay ENC/DEC overhead, but on a
        // communication-heavy circuit it must never need *more*
        // communication than the uncompressed baseline (§4, §6.3).
        assert!(
            r.metrics.communication_ops <= baseline.metrics.communication_ops,
            "{strategy}: {} communication ops vs baseline {}",
            r.metrics.communication_ops,
            baseline.metrics.communication_ops
        );
        if r.metrics.communication_ops < baseline.metrics.communication_ops {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 1,
        "at least one partial strategy must strictly reduce communication"
    );

    // The prior-work full-ququart baseline compresses everything and pays
    // for it in encode/decode and ququart SWAP traffic — the paper's §6.2
    // motivation for partial compression. Pin that relationship too.
    let fq = session().compile(&circuit, &topo, Strategy::FullQuquart);
    assert!(
        fq.metrics.communication_ops > baseline.metrics.communication_ops,
        "full-ququart unexpectedly needed no extra communication ({} vs {})",
        fq.metrics.communication_ops,
        baseline.metrics.communication_ops
    );
}

#[test]
fn exhaustive_on_tiny_instance_matches_or_beats_baseline_gate_eps() {
    let circuit = cuccaro_sized(6);
    let topo = Topology::grid(6);

    let baseline = session().compile(&circuit, &topo, Strategy::QubitOnly);
    let ec = session().compile(&circuit, &topo, Strategy::Exhaustive { ordered: true });
    check_result("ec-tiny", &ec, &topo);
    // EC only commits a compression when it improves the objective, so it
    // can never end up worse than the uncompressed starting point (§5.1).
    assert!(
        ec.metrics.gate_eps >= baseline.metrics.gate_eps - 1e-12,
        "exhaustive search regressed gate EPS: {} < {}",
        ec.metrics.gate_eps,
        baseline.metrics.gate_eps
    );
}

#[test]
fn compilation_is_deterministic_across_runs() {
    // Deliberately uses the free `compile` wrapper (one-shot uncached
    // sessions) so both runs really execute the pipeline — through the
    // shared session the second run would be a cache hit and this test
    // would be vacuous.
    let circuit = small_adder();
    let topo = Topology::grid(circuit.n_qubits());
    let config = CompilerConfig::paper();
    for strategy in COMPRESSING {
        let a = compile(&circuit, &topo, strategy, &config);
        let b = compile(&circuit, &topo, strategy, &config);
        assert_eq!(a.metrics.total_eps, b.metrics.total_eps, "{strategy}");
        assert_eq!(a.schedule.len(), b.schedule.len(), "{strategy}");
        assert_eq!(a.pairs, b.pairs, "{strategy}");
    }
}
