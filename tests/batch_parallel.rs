//! Batch-engine determinism: `run_batch` must return byte-identical
//! results for the same job list at any worker count, and must agree with
//! compiling each job directly through the serial `compile` entry point.

use qompress::{run_batch, BatchJob, BatchRequest, BatchResult, Strategy, ALL_STRATEGIES};
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use qompress_workloads::{build, random_circuit, Benchmark};

/// A mixed job list: built-in benchmarks and QASM-generator circuits,
/// several strategies, and two shared topologies (so the per-topology
/// cache dedup path is exercised).
fn sweep_jobs() -> Vec<BatchJob> {
    let mut jobs = Vec::new();
    let topo_grid = Topology::grid(8);
    let topo_line = Topology::line(8);
    for (bench, size) in [(Benchmark::Cuccaro, 8), (Benchmark::Bv, 8)] {
        let circuit = build(bench, size, 7);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            jobs.push(BatchJob::new(
                format!("{bench}-{}-grid", strategy.name()),
                circuit.clone(),
                strategy,
                topo_grid.clone(),
            ));
        }
        jobs.push(BatchJob::new(
            format!("{bench}-awe-line"),
            circuit,
            Strategy::Awe,
            topo_line.clone(),
        ));
    }
    for seed in 0..3u64 {
        jobs.push(BatchJob::new(
            format!("random-{seed}"),
            random_circuit(6, 24, seed),
            Strategy::Eqm,
            topo_grid.clone(),
        ));
    }
    jobs
}

/// Renders every observable field of a batch result into one string, so
/// "byte-identical" is a literal comparison.
fn render(result: &BatchResult) -> String {
    let mut out = String::new();
    for r in &result.results {
        out.push_str(&format!(
            "{} #{}\nstrategy: {}\nmetrics: {:?}\nschedule: {:?}\nplacements: {:?} -> {:?}\nencoded: {:?}\npairs: {:?}\n",
            r.label,
            r.job_index,
            r.result.strategy,
            r.result.metrics,
            r.result.schedule,
            r.result.initial_placements,
            r.result.final_placements,
            r.result.encoded_units,
            r.result.pairs,
        ));
    }
    out
}

#[test]
fn one_worker_and_many_workers_are_byte_identical() {
    let jobs = sweep_jobs();
    assert!(jobs.len() >= 8, "sweep must be at least 8 jobs");
    let serial = run_batch(&BatchRequest::new(jobs.clone(), 1));
    for workers in [2usize, 4, 8] {
        let parallel = run_batch(&BatchRequest::new(jobs.clone(), workers));
        assert_eq!(
            render(&serial),
            render(&parallel),
            "worker count {workers} changed batch output"
        );
    }
}

#[test]
fn batch_agrees_with_serial_compile() {
    let jobs = sweep_jobs();
    let out = run_batch(&BatchRequest::new(jobs.clone(), 4));
    assert_eq!(out.results.len(), jobs.len());
    let cfg = qompress::CompilerConfig::paper();
    for (job, got) in jobs.iter().zip(&out.results) {
        let want = qompress::compile(&job.circuit, &job.topology, job.strategy, &cfg);
        assert_eq!(got.result.metrics, want.metrics, "{}", job.label);
        assert_eq!(
            format!("{:?}", got.result.schedule),
            format!("{:?}", want.schedule),
            "{}",
            job.label
        );
    }
}

#[test]
fn caches_are_shared_across_jobs_on_one_topology() {
    let out = run_batch(&BatchRequest::new(sweep_jobs(), 4));
    // grid-8 and line-8 only.
    assert_eq!(out.distinct_topologies, 2);
}

#[test]
fn every_strategy_runs_in_a_batch() {
    let c = build(Benchmark::Cuccaro, 6, 7);
    let topo = Topology::grid(6);
    let jobs: Vec<BatchJob> = ALL_STRATEGIES
        .into_iter()
        .map(|s| BatchJob::new(s.name(), c.clone(), s, topo.clone()))
        .collect();
    let out = run_batch(&BatchRequest::new(jobs, 4));
    for r in &out.results {
        assert!(r.result.metrics.total_eps > 0.0, "{}", r.label);
        assert!(
            r.result.schedule.validate(&topo).is_empty(),
            "{}: invalid schedule",
            r.label
        );
    }
    assert_eq!(out.distinct_topologies, 1);
}

#[test]
fn empty_circuits_compile_in_batches() {
    let jobs = vec![BatchJob::new(
        "empty",
        Circuit::new(3),
        Strategy::QubitOnly,
        Topology::grid(3),
    )];
    let out = run_batch(&BatchRequest::new(jobs, 2));
    assert_eq!(out.results[0].result.logical_gates, 0);
}
